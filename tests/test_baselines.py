"""Tests for the baseline rebalancers."""

import numpy as np
import pytest

from repro.algorithms import (
    GreedyRebalancer,
    LocalSearchRebalancer,
    NoopRebalancer,
    RandomRestartRebalancer,
)
from repro.cluster import ClusterState, Machine, Shard
from repro.workloads import SyntheticConfig, generate


def imbalanced_state():
    machines = Machine.homogeneous(4, 10.0)
    shards = Shard.uniform(8, 1.0)
    return ClusterState(machines, shards, [0] * 8)  # all on machine 0


class TestNoop:
    def test_proposes_no_change(self):
        state = imbalanced_state()
        result = NoopRebalancer().rebalance(state)
        np.testing.assert_array_equal(result.target_assignment, state.assignment)
        assert result.num_moves == 0
        assert result.peak_before == result.peak_after
        assert result.feasible  # initial state is within capacity

    def test_input_not_mutated(self):
        state = imbalanced_state()
        before = state.assignment
        NoopRebalancer().rebalance(state)
        np.testing.assert_array_equal(state.assignment, before)


class TestGreedy:
    def test_balances_trivial_case(self):
        result = GreedyRebalancer().rebalance(imbalanced_state())
        assert result.feasible
        assert result.peak_after <= 0.2 + 1e-9  # 2 shards per machine
        assert result.improvement > 0

    def test_respects_move_budget(self):
        result = GreedyRebalancer(max_moves=2).rebalance(imbalanced_state())
        assert result.num_moves <= 2

    def test_stops_when_balanced(self):
        machines = Machine.homogeneous(2, 10.0)
        shards = Shard.uniform(2, 1.0)
        state = ClusterState(machines, shards, [0, 1])
        result = GreedyRebalancer().rebalance(state)
        assert result.num_moves == 0

    def test_plan_is_transient_feasible(self):
        state = generate(SyntheticConfig(num_machines=10, shards_per_machine=6, seed=2))
        result = GreedyRebalancer().rebalance(state)
        assert result.plan is not None and result.plan.feasible


class TestLocalSearch:
    def test_improves_generated_instance(self):
        state = generate(
            SyntheticConfig(num_machines=12, shards_per_machine=8, seed=4, placement_skew=0.6)
        )
        result = LocalSearchRebalancer(seed=1).rebalance(state)
        assert result.feasible
        assert result.peak_after <= result.peak_before + 1e-9

    def test_beats_greedy_or_ties(self):
        state = generate(
            SyntheticConfig(num_machines=12, shards_per_machine=8, seed=4, placement_skew=0.6)
        )
        greedy = GreedyRebalancer().rebalance(state)
        ls = LocalSearchRebalancer(seed=1).rebalance(state)
        assert ls.peak_after <= greedy.peak_after + 0.02

    def test_history_is_monotone_nonincreasing(self):
        state = imbalanced_state()
        result = LocalSearchRebalancer(seed=0).rebalance(state)
        hist = np.array(result.history)
        assert np.all(np.diff(hist) <= 1e-12)

    def test_swap_improves_when_no_single_move_does(self):
        # m0: 4+4 = 8 (peak 0.8), m1: 3+2 = 5.  Every single move raises
        # the peak (4 -> m1 gives 0.9), but swapping 4 <-> 2 yields 6/7
        # (peak 0.7) and is executable (m1 can hold the in-flight copy).
        machines = Machine.homogeneous(2, 10.0)
        shards = [
            Shard(id=0, demand=np.full(3, 4.0)),
            Shard(id=1, demand=np.full(3, 4.0)),
            Shard(id=2, demand=np.full(3, 3.0)),
            Shard(id=3, demand=np.full(3, 2.0)),
        ]
        state = ClusterState(machines, shards, [0, 0, 1, 1])
        result = LocalSearchRebalancer(seed=0).rebalance(state)
        assert result.peak_after == pytest.approx(0.7)

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="max_steps"):
            LocalSearchRebalancer(max_steps=0)
        with pytest.raises(ValueError, match="neighborhood_sample"):
            LocalSearchRebalancer(neighborhood_sample=0)


class TestRandomRestart:
    def test_never_worse_than_initial(self):
        state = generate(SyntheticConfig(num_machines=8, shards_per_machine=6, seed=6))
        result = RandomRestartRebalancer(restarts=4, seed=0).rebalance(state)
        assert result.peak_after <= result.peak_before + 1e-9

    def test_deterministic_per_seed(self):
        state = generate(SyntheticConfig(num_machines=8, shards_per_machine=6, seed=6))
        a = RandomRestartRebalancer(restarts=4, seed=0).rebalance(state)
        b = RandomRestartRebalancer(restarts=4, seed=0).rebalance(state)
        np.testing.assert_array_equal(a.target_assignment, b.target_assignment)

    def test_invalid_restarts(self):
        with pytest.raises(ValueError, match="restarts"):
            RandomRestartRebalancer(restarts=0)


class TestResultMetadata:
    def test_runtime_recorded(self):
        result = GreedyRebalancer().rebalance(imbalanced_state())
        assert result.runtime_seconds >= 0

    def test_num_moves_counts_logical_moves(self):
        state = imbalanced_state()
        result = GreedyRebalancer().rebalance(state)
        changed = int(np.sum(result.target_assignment != state.assignment))
        assert result.num_moves == changed
