#!/usr/bin/env python
"""Microbenchmarks for ClusterState mutation + transaction primitives.

Times the operations the delta-evaluated ALNS loop leans on: single
mutations inside/outside a transaction, begin/commit/rollback in both
journal modes, vectorized bulk unassignment, and the lazy peak-cache
refresh.  Run directly; prints one line per primitive.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

import numpy as np  # noqa: E402

from repro.workloads import scaling_suite  # noqa: E402


def bench(label: str, func, n: int = 2000) -> None:
    func()  # warm-up
    t0 = time.perf_counter()
    for _ in range(n):
        func()
    per = (time.perf_counter() - t0) / n
    print(f"{label:46s} {per * 1e6:9.2f} us")


def main() -> None:
    for m, spm in ((50, 6), (400, 6)):
        ((name, state),) = list(scaling_suite(sizes=((m, spm),)))
        print(f"--- {name} ---")
        rng = np.random.default_rng(0)
        shard = int(rng.integers(state.num_shards))
        machines = [i for i in range(state.num_machines)][:2]

        def move_roundtrip():
            state.move(shard, machines[0])
            state.move(shard, machines[1])

        bench("move x2 (no transaction)", move_roundtrip)

        def txn_noop(mode):
            def run():
                state.begin(mode=mode)
                state.rollback()

            return run

        bench("begin+rollback (snapshot)", txn_noop("snapshot"))
        bench("begin+rollback (journal)", txn_noop("journal"))

        def txn_moves(mode):
            def run():
                state.begin(mode=mode)
                state.move(shard, machines[0])
                state.move(shard, machines[1])
                state.rollback()

            return run

        bench("begin+2 moves+rollback (snapshot)", txn_moves("snapshot"))
        bench("begin+2 moves+rollback (journal)", txn_moves("journal"))

        batch = rng.choice(
            np.flatnonzero(state.assignment_view() >= 0),
            size=min(100, state.num_shards),
            replace=False,
        )

        def bulk_unassign():
            state.begin()
            state.unassign_many([int(j) for j in batch])
            state.rollback()

        bench("begin+unassign_many(100)+rollback", bulk_unassign, n=500)

        def peak_refresh():
            state.begin()
            state.move(shard, machines[0])
            state.machine_peak_utilization_view()
            state.rollback()

        bench("move+peak-cache refresh (in txn)", peak_refresh)

        bench("copy() whole state", state.copy, n=500)
        print()


if __name__ == "__main__":
    main()
