"""Bitwise-parity properties of the SoA score kernel (hypothesis).

Two contracts pin the vectorized repair kernel (see the "Delta
evaluation contract" in docs/ARCHITECTURE.md):

* The delta-evaluated engine — SoA score kernel, journal transactions,
  incremental objective with ``cross_check`` asserting every term
  against a from-scratch recompute — walks the exact trajectory of the
  copy-based reference engine.
* The pruned regret-2 path produces bitwise-identical placements to the
  exact full-repartition path on arbitrary instances, so the
  ``regret2_exact_max`` gate is a pure performance crossover.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import AlnsConfig, AlnsEngine, Objective
from repro.algorithms.objective import IncrementalObjective
from repro.algorithms.destroy import DEFAULT_DESTROY_OPS
from repro.algorithms.repair import (
    DEFAULT_REPAIR_OPS,
    _regret2_exact,
    _regret2_pruned,
)
from repro.workloads import SyntheticConfig, generate


@given(seed=st.integers(min_value=0, max_value=500), m=st.integers(min_value=8, max_value=50))
@settings(max_examples=12, deadline=None)
def test_property_delta_engine_bitwise_equals_copy_engine(seed, m):
    """SoA-kernel trajectories are bitwise those of the copy-based engine.

    The delta run uses ``cross_check=True``, so every objective
    evaluation along the trajectory is additionally asserted term-by-term
    against a full recompute — the strongest form of the contract.
    """
    state = generate(SyntheticConfig(num_machines=m, shards_per_machine=4, seed=seed))
    outs = []
    for delta in (True, False):
        cfg = AlnsConfig(iterations=60, seed=seed, delta_evaluation=delta)
        engine = AlnsEngine(cfg, DEFAULT_DESTROY_OPS, DEFAULT_REPAIR_OPS)
        base = Objective(state.assignment, state.sizes)
        objective = IncrementalObjective(base, cross_check=True) if delta else base
        outs.append(engine.run(state.copy(), objective))
    d, c = outs
    assert repr(d.best_objective) == repr(c.best_objective)
    assert d.accepted == c.accepted
    assert d.history == c.history
    np.testing.assert_array_equal(d.best_assignment, c.best_assignment)


@given(
    seed=st.integers(min_value=0, max_value=1000),
    m=st.integers(min_value=10, max_value=60),
    q=st.integers(min_value=2, max_value=30),
)
@settings(max_examples=25, deadline=None)
def test_property_pruned_regret_bitwise_equals_exact(seed, m, q):
    """Pruned top-list regret-2 == exact full-repartition regret-2."""
    state = generate(SyntheticConfig(num_machines=m, shards_per_machine=4, seed=seed))
    rng = np.random.default_rng(seed)
    assigned = np.flatnonzero(state.assignment_view() >= 0)
    take = min(q, assigned.size)
    removed = rng.choice(assigned, size=take, replace=False).tolist()
    exact_state, pruned_state = state.copy(), state.copy()
    exact_state.unassign_many(removed)
    pruned_state.unassign_many(removed)
    _regret2_exact(exact_state, removed)
    _regret2_pruned(pruned_state, removed)
    np.testing.assert_array_equal(exact_state.assignment, pruned_state.assignment)
    # Both end states satisfy every cache invariant (SoA mirror,
    # segmented block-max, peaks, counts, replica hosts).
    exact_state.validate()
    pruned_state.validate()
