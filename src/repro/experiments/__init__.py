"""Experiment harness: one module per table/figure (see DESIGN.md §4).

Importing this package populates :data:`repro.experiments.REGISTRY`, so
``REGISTRY["e3"](fast=True)`` regenerates experiment E3's rows.
"""

from repro.experiments import (  # noqa: F401  (imported for registration)
    e1_instances,
    e2_exchange_budget,
    e3_vs_baselines,
    e4_convergence,
    e5_datacenter,
    e6_scalability,
    e7_transient,
    e8_latency,
    e9_optimality,
    e10_ablation,
    e11_replicas,
    e12_recovery,
    e13_online,
    e14_pruning,
    e15_migration_window,
    e16_routing,
    e17_pool,
    e18_diurnal,
    e19_loaner_sizing,
    e20_portfolio,
    e21_controller,
)
from repro.experiments.harness import REGISTRY, format_table, is_full_run, print_table

__all__ = ["REGISTRY", "format_table", "print_table", "is_full_run"]
