"""E5 — datacenter snapshots (real-data table analogue).

Shape claims: on every drifted snapshot both algorithms repair the
overload, SRA matches or beats local search on peak utilization, and the
exchange contract settles (2 borrowed, 2 returned).
"""

from collections import defaultdict

from repro.experiments import REGISTRY, is_full_run


def test_e5_datacenter(benchmark, save_table):
    rows = benchmark.pedantic(
        REGISTRY["e5"], kwargs={"fast": not is_full_run()}, rounds=1, iterations=1
    )
    save_table("e5", rows, "E5 — datacenter snapshots: before/after, cost, exchange")

    by_instance = defaultdict(dict)
    for r in rows:
        by_instance[r["instance"]][r["algorithm"]] = r
    for instance, algos in by_instance.items():
        for name, r in algos.items():
            assert r["feasible"], f"{instance}/{name}"
            # Drifted snapshots start overloaded; both must repair that.
            assert r["peak_before"] > 1.0
            assert r["peak_after"] <= 1.0
        sra = algos["sra-b2"]
        assert sra["peak_after"] <= algos["local-search"]["peak_after"] + 0.01
        assert sra["borrowed"] == 2 and sra["returned"] == 2
        assert sra["makespan_s"] > 0
