"""E3 — SRA vs baselines (main comparison figure analogue).

Shape claims: every algorithm is feasible and at least as good as noop;
SRA (with exchange) matches or beats the state-of-the-art local search
on every instance and wins clearly on the tight (0.9-utilization) ones.
"""

from collections import defaultdict

from repro.experiments import REGISTRY, is_full_run


def test_e3_vs_baselines(benchmark, save_table):
    rows = benchmark.pedantic(
        REGISTRY["e3"], kwargs={"fast": not is_full_run()}, rounds=1, iterations=1
    )
    save_table("e3", rows, "E3 — final peak utilization by algorithm")

    by_instance = defaultdict(dict)
    for r in rows:
        by_instance[r["instance"]][r["algorithm"]] = r

    tight_gaps = []
    for instance, algos in by_instance.items():
        assert set(algos) == {"noop", "greedy", "local-search", "sra-b0", "sra-b2"}
        noop = algos["noop"]["peak_after"]
        for name, r in algos.items():
            assert r["feasible"], f"{instance}/{name} infeasible"
            assert r["peak_after"] <= noop + 1e-9
        # SRA with exchange matches-or-beats the state-of-the-art stand-in.
        assert (
            algos["sra-b2"]["peak_after"]
            <= algos["local-search"]["peak_after"] + 0.01
        ), instance
        if "u0.90" in instance:
            tight_gaps.append(
                algos["local-search"]["peak_after"] - algos["sra-b2"]["peak_after"]
            )
    # "Outperforms the state-of-the-art significantly": on tight instances
    # SRA wins by a clear margin on average.
    assert tight_gaps, "suite contained no tight instances"
    assert sum(tight_gaps) / len(tight_gaps) > 0.005
