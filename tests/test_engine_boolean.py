"""Tests for conjunctive (AND) retrieval."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    BM25Scorer,
    CorpusConfig,
    Document,
    InvertedIndex,
    Query,
    generate_corpus,
    generate_queries,
)
from repro.engine.boolean import ConjunctiveScorer, intersect_postings


def hand_corpus():
    return [
        Document.from_text(0, "apple banana cherry"),
        Document.from_text(1, "apple banana"),
        Document.from_text(2, "apple cherry cherry"),
        Document.from_text(3, "banana banana"),
        Document.from_text(4, "durian"),
    ]


class TestIntersect:
    def test_two_terms(self):
        ix = InvertedIndex.build(hand_corpus())
        docs, work = intersect_postings(ix, ["apple", "banana"])
        np.testing.assert_array_equal(docs, [0, 1])
        assert work > 0

    def test_three_terms(self):
        ix = InvertedIndex.build(hand_corpus())
        docs, _ = intersect_postings(ix, ["apple", "banana", "cherry"])
        np.testing.assert_array_equal(docs, [0])

    def test_oov_term_empties_result(self):
        ix = InvertedIndex.build(hand_corpus())
        docs, work = intersect_postings(ix, ["apple", "zzz"])
        assert docs.size == 0 and work == 0

    def test_single_term(self):
        ix = InvertedIndex.build(hand_corpus())
        docs, _ = intersect_postings(ix, ["cherry"])
        np.testing.assert_array_equal(docs, [0, 2])

    def test_duplicate_terms_collapse(self):
        ix = InvertedIndex.build(hand_corpus())
        a, _ = intersect_postings(ix, ["apple", "apple"])
        b, _ = intersect_postings(ix, ["apple"])
        np.testing.assert_array_equal(a, b)


class TestConjunctiveScorer:
    def test_results_contain_all_terms(self):
        ix = InvertedIndex.build(hand_corpus())
        results, _ = ConjunctiveScorer(ix).search(Query(("apple", "cherry")), k=5)
        assert {r.doc_id for r in results} == {0, 2}

    def test_scores_match_bm25_on_intersection(self):
        ix = InvertedIndex.build(hand_corpus())
        conj = ConjunctiveScorer(ix)
        bm25 = BM25Scorer(ix)
        and_results, _ = conj.search(Query(("apple", "banana")), k=5)
        or_results, _ = bm25.search(Query(("apple", "banana")), k=10)
        or_scores = {r.doc_id: r.score for r in or_results}
        for r in and_results:
            assert r.score == pytest.approx(or_scores[r.doc_id], rel=1e-9)

    def test_empty_intersection(self):
        ix = InvertedIndex.build(hand_corpus())
        results, _ = ConjunctiveScorer(ix).search(Query(("durian", "apple")), k=5)
        assert results == []

    def test_k_limits(self):
        ix = InvertedIndex.build(hand_corpus())
        results, _ = ConjunctiveScorer(ix).search(Query(("banana",)), k=1)
        assert len(results) == 1

    def test_conjunctive_work_bounded_by_disjunctive(self):
        cfg = CorpusConfig(num_docs=300, vocab_size=500, seed=4)
        docs = generate_corpus(cfg)
        ix = InvertedIndex.build(docs)
        conj, bm25 = ConjunctiveScorer(ix), BM25Scorer(ix)
        total_and = total_or = 0
        for q in generate_queries(cfg, 20, terms_per_query=(2, 4), seed=5):
            _, wa = conj.search(q, k=10)
            _, wo = bm25.search(q, k=10)
            total_and += wa
            total_or += wo
        assert total_and < total_or  # intersection is the cheap mode

    def test_invalid_k(self):
        ix = InvertedIndex.build(hand_corpus())
        with pytest.raises(ValueError, match="k"):
            ConjunctiveScorer(ix).search(Query(("apple",)), k=0)


@given(seed=st.integers(min_value=0, max_value=60))
@settings(max_examples=15, deadline=None)
def test_property_conjunction_is_subset_of_every_posting_list(seed):
    cfg = CorpusConfig(num_docs=80, vocab_size=150, seed=seed)
    docs = generate_corpus(cfg)
    ix = InvertedIndex.build(docs)
    for q in generate_queries(cfg, 4, terms_per_query=(2, 3), seed=seed + 1):
        result, _ = intersect_postings(ix, list(q.terms))
        for term in q.terms:
            plist = ix.postings(term)
            members = set() if plist is None else {int(d) for d in plist.doc_ids}
            assert {int(d) for d in result} <= members
