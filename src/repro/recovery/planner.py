"""Machine-failure recovery.

When a machine dies, its shards are **orphaned**: their serving copies
are gone and must be rebuilt elsewhere (from replica siblings when the
index is replicated, from cold storage otherwise).  Recovery has the
same structure as rebalancing — place load under capacity, anti-affinity
and transient constraints — but with two twists:

* orphaned shards have no migration source, so their placement costs a
  *rebuild* (bytes pulled from a surviving sibling or backup), not a
  two-ended move;
* the cluster just lost a machine's capacity, so tight clusters may have
  no feasible recovery at all — which is exactly where borrowed exchange
  machines act as spare capacity (experiment E12).

:func:`fail_machine` degrades a state in place-compatible fashion
(orphans unassigned, machine blocked so nothing returns to it);
:class:`RecoveryPlanner` places the orphans and optionally rebalances
the result with SRA.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.algorithms import RebalanceResult, SRA, SRAConfig
from repro.algorithms.repair import regret2_insertion
from repro.cluster import ClusterState, ExchangeLedger

__all__ = ["fail_machine", "RecoveryResult", "RecoveryPlanner"]


def fail_machine(state: ClusterState, machine_id: int) -> tuple[ClusterState, list[int]]:
    """Return a degraded copy of *state* with *machine_id* failed.

    The machine's shards become unassigned (orphaned) and the machine is
    blocked so no algorithm places anything back on it.  The input state
    is not mutated.
    """
    if not 0 <= machine_id < state.num_machines:
        raise ValueError(f"unknown machine {machine_id}")
    degraded = state.copy()
    orphans = [int(j) for j in degraded.machine_shards(machine_id)]
    for j in orphans:
        degraded.unassign(j)
    degraded.set_offline(machine_id)
    return degraded, orphans


@dataclass
class RecoveryResult:
    """Outcome of a recovery episode.

    Attributes
    ----------
    feasible:
        All orphans placed within capacity, without replica conflicts.
    assignment:
        Final assignment (orphans placed; possibly rebalanced).
    peak_after:
        Peak utilization of the recovered cluster (failed machine's
        zero load excluded — it is out of service).
    rebuild_bytes:
        Bytes that must be copied to rebuild the orphaned shards.
    rebuild_sources:
        ``{shard: source_machine}`` — the surviving sibling to copy
        from, or -1 when no sibling exists (cold-storage rebuild).
    rebalance:
        The follow-up SRA result when rebalancing was requested.
    """

    feasible: bool
    assignment: np.ndarray
    peak_after: float
    rebuild_bytes: float
    rebuild_sources: dict[int, int]
    rebalance: RebalanceResult | None = None


class RecoveryPlanner:
    """Place orphaned shards, then optionally rebalance.

    Parameters
    ----------
    rebalance_after:
        When True, run SRA on the recovered cluster (an episode on its
        own, honouring any exchange ledger).
    sra_config:
        Configuration of the follow-up SRA.
    """

    def __init__(
        self,
        *,
        rebalance_after: bool = False,
        sra_config: SRAConfig | None = None,
    ) -> None:
        self.rebalance_after = rebalance_after
        self.sra_config = sra_config or SRAConfig()

    def recover(
        self,
        degraded: ClusterState,
        orphans: list[int],
        ledger: ExchangeLedger | None = None,
    ) -> RecoveryResult:
        """Recover *degraded* (as produced by :func:`fail_machine`).

        Orphans are placed by regret-2 insertion (capacity, anti-affinity
        and blocked machines respected); rebuild sources are surviving
        replica siblings where available.  The placement RNG derives
        from the configured ALNS seed (``sra_config.alns.seed``), so
        recovery plans are reproducible under user-controlled seeding.
        """
        tracer = obs.current().tracer
        with tracer.span(
            "recovery.recover", orphans=len(orphans), seed=self.sra_config.alns.seed
        ) as recovery_span:
            work = degraded.copy()
            missing = [j for j in orphans if work.machine_of(j) < 0]
            rng = np.random.default_rng(self.sra_config.alns.seed)
            with tracer.span("recovery.place", missing=len(missing)):
                regret2_insertion(work, rng, missing)

            # Peak over in-service machines only.
            peaks = work.machine_peak_utilization()
            in_service = ~work.offline_mask
            peak = float(peaks[in_service].max()) if np.any(in_service) else 0.0

            feasible = (
                work.is_fully_assigned()
                and work.is_within_capacity()
                and not work.has_replica_conflicts()
            )

            sources: dict[int, int] = {}
            rebuild = 0.0
            for j in orphans:
                rebuild += float(work.sizes[j])
                peer_hosts = work.replica_peer_machines(j)
                # Exclude the shard's own new machine as a "source".
                peer_hosts = peer_hosts[peer_hosts != work.machine_of(j)]
                sources[j] = int(peer_hosts[0]) if peer_hosts.size else -1

            rebalance = None
            if self.rebalance_after and feasible:
                with tracer.span("recovery.rebalance"):
                    rebalance = SRA(self.sra_config).rebalance(work, ledger)
                if rebalance.feasible:
                    work.apply_assignment(rebalance.target_assignment)
                    peaks = work.machine_peak_utilization()
                    peak = float(peaks[in_service].max())

            recovery_span.set("feasible", feasible)
            recovery_span.set("peak_after", peak)
            recovery_span.set("rebuild_bytes", rebuild)
        metrics = obs.current().metrics
        if metrics.enabled:
            metrics.counter("recovery.episodes").inc()
            metrics.counter("recovery.rebuild_bytes").inc(rebuild)
            metrics.gauge("recovery.peak_after").set(peak)

        return RecoveryResult(
            feasible=feasible,
            assignment=work.assignment,
            peak_after=peak,
            rebuild_bytes=rebuild,
            rebuild_sources=sources,
            rebalance=rebalance,
        )
