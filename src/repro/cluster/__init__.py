"""Cluster substrate: resources, machines, shards, placement state.

This package holds the data model everything else builds on.  See
DESIGN.md §1 for the formal problem the model supports.
"""

from repro.cluster.exchange import (
    ExchangeLedger,
    ExchangePoolManager,
    ExchangeSettlement,
    ExchangeViolation,
    PoolDecision,
    PoolSizingPolicy,
    settle_fleet,
)
from repro.cluster.machine import Machine, MachineClass
from repro.cluster.resources import DEFAULT_SCHEMA, ResourceSchema, dominates, safe_ratio
from repro.cluster.shard import Shard
from repro.cluster.snapshot import from_dict, load_json, save_json, to_dict
from repro.cluster.state import UNASSIGNED, ClusterState

__all__ = [
    "DEFAULT_SCHEMA",
    "ResourceSchema",
    "dominates",
    "safe_ratio",
    "Machine",
    "MachineClass",
    "Shard",
    "ClusterState",
    "UNASSIGNED",
    "ExchangeLedger",
    "ExchangeSettlement",
    "ExchangeViolation",
    "settle_fleet",
    "PoolDecision",
    "PoolSizingPolicy",
    "ExchangePoolManager",
    "to_dict",
    "from_dict",
    "save_json",
    "load_json",
]
