"""Serving impact of an in-progress migration.

Rebalancing is not free while it runs: every machine that sends or
receives shard copies spends NIC bandwidth and CPU cycles on the
transfer.  This module converts a migration plan into per-machine
**background load** fractions for the serving simulator, so the latency
cost of the migration window itself becomes measurable (experiment E15).

Model: during the migration window (the plan's makespan), machine ``m``
is busy transferring for ``transfer_seconds(m) / makespan`` of the time;
while actively transferring it loses ``transfer_overhead`` of its serving
capacity (copy checksumming, page-cache pressure, NIC interrupts).  The
average derating over the window is the product of the two — a
deliberately simple, conservative model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_fraction, check_positive
from repro.cluster import ClusterState
from repro.migration import BandwidthModel, PlanResult
from repro.runtime.kernel import Runtime
from repro.runtime.machines import ServingFleet
from repro.runtime.migration import MigrationExecutor
from repro.runtime.serving import QueryArrivalProcess
from repro.simulate.des import (
    ServingConfig,
    ServingReport,
    _busy_fraction,
    _effective_speeds,
    _empty_summary,
    _sample_arrivals,
    simulate_serving,
)
from repro.simulate.latency import summarize
from repro.simulate.workprofile import WorkProfile

__all__ = [
    "migration_background_load",
    "MigrationWindowReport",
    "simulate_migration_window",
    "TimelineWindowReport",
    "simulate_migration_timeline",
]


def migration_background_load(
    plan: PlanResult,
    num_machines: int,
    *,
    bandwidth: BandwidthModel | None = None,
    transfer_overhead: float = 0.3,
) -> dict[int, float]:
    """Per-machine serving-capacity derating during the migration window.

    Returns ``{machine: fraction}`` for machines with non-zero transfer
    activity; fractions are in [0, transfer_overhead].

    Per-machine busy seconds come from the **same per-wave accounting**
    that :meth:`BandwidthModel.cost` uses for the makespan: within a
    wave, a machine's NIC is busy for ``max(bytes_out, bytes_in) /
    bandwidth`` (full duplex), and wave busy times sum across waves.
    Summing ``bytes / bandwidth`` per move on both endpoints — the old
    model — double-charged machines that send and receive in the same
    wave and overstated NIC time whenever a machine's transfers within a
    wave actually run back-to-back on one duplex NIC, which could push
    ``busy_fraction`` past 1 (clamped) for busy dual-role machines while
    the makespan in the denominator said otherwise.
    """
    check_fraction("transfer_overhead", transfer_overhead)
    model = bandwidth or BandwidthModel()
    cost = model.cost(plan.schedule, num_machines)
    if cost.makespan_seconds <= 0:
        return {}
    transfer_seconds = model.machine_busy_seconds(plan.schedule, num_machines)
    busy_fraction = np.minimum(transfer_seconds / cost.makespan_seconds, 1.0)
    out = {
        int(m): float(transfer_overhead * busy_fraction[m])
        for m in np.flatnonzero(busy_fraction > 0)
    }
    return out


@dataclass(frozen=True)
class MigrationWindowReport:
    """Latency before, during and after a rebalancing migration."""

    before: ServingReport
    during: ServingReport
    after: ServingReport
    makespan_seconds: float

    def rows(self) -> list[dict]:
        """Table rows for the experiment harness."""
        out = []
        for phase, rep in (
            ("before", self.before),
            ("during", self.during),
            ("after", self.after),
        ):
            lat = rep.latency
            out.append(
                {
                    "phase": phase,
                    "p50_ms": 1e3 * lat.p50,
                    "p95_ms": 1e3 * lat.p95,
                    "p99_ms": 1e3 * lat.p99,
                    "mean_ms": 1e3 * lat.mean,
                    "peak_busy": rep.peak_busy_fraction,
                }
            )
        return out


def simulate_migration_window(
    initial: ClusterState,
    final_assignment: np.ndarray,
    plan: PlanResult,
    profile: WorkProfile,
    config: ServingConfig,
    *,
    bandwidth: BandwidthModel | None = None,
    transfer_overhead: float = 0.3,
    shard_to_engine_shard: list[int] | None = None,
) -> MigrationWindowReport:
    """Three-phase serving simulation around a migration.

    * **before** — initial placement, no background load;
    * **during** — initial placement (conservative: shards serve from
      their source until the copy lands) plus transfer derating;
    * **after** — final placement, no background load.

    All three phases replay the same arrival process (same seed), so
    differences are attributable to placement and derating only.
    """
    check_positive("transfer_overhead", transfer_overhead)
    model = bandwidth or BandwidthModel()
    load = migration_background_load(
        plan,
        initial.num_machines,
        bandwidth=model,
        transfer_overhead=transfer_overhead,
    )
    before = simulate_serving(initial, profile, shard_to_engine_shard, config)
    during_cfg = ServingConfig(
        arrival_rate=config.arrival_rate,
        duration=config.duration,
        postings_per_cpu_second=config.postings_per_cpu_second,
        seed=config.seed,
        background_load=load,
    )
    during = simulate_serving(initial, profile, shard_to_engine_shard, during_cfg)
    final = initial.copy()
    final.apply_assignment(final_assignment)
    after = simulate_serving(final, profile, shard_to_engine_shard, config)
    makespan = model.cost(plan.schedule, initial.num_machines).makespan_seconds
    return MigrationWindowReport(
        before=before, during=during, after=after, makespan_seconds=makespan
    )


@dataclass(frozen=True)
class TimelineWindowReport:
    """One time-resolved serving run with the migration executed mid-stream.

    Unlike :class:`MigrationWindowReport` (three separate runs with a
    window-averaged derating), this is a single arrival stream: waves
    derate their endpoint NICs only while transfers are actually in
    flight, and each shard flips to its destination the instant its wave
    completes.  ``serving`` always carries raw arrival/latency arrays so
    latency can be bucketed per wave.
    """

    serving: ServingReport
    migration_start: float
    migration_end: float
    wave_intervals: tuple[tuple[float, float], ...]
    waves_executed: int
    bytes_transferred: float
    peak_transient_utilization: float

    def rows(self) -> list[dict]:
        """Per-wave latency table plus pooled window/outside rows."""
        arrivals = self.serving.raw_arrivals
        latencies = self.serving.raw_latencies
        assert arrivals is not None and latencies is not None
        out = []
        in_window = (arrivals >= self.migration_start) & (
            arrivals < self.migration_end
        )
        buckets: list[tuple[str, np.ndarray]] = [
            (f"wave{i}", (arrivals >= lo) & (arrivals < hi))
            for i, (lo, hi) in enumerate(self.wave_intervals)
        ]
        buckets.append(("window", in_window))
        buckets.append(("outside", ~in_window))
        for phase, mask in buckets:
            picked = latencies[mask]
            lat = summarize(picked) if picked.size else _empty_summary()
            out.append(
                {
                    "phase": phase,
                    "queries": int(picked.size),
                    "p50_ms": 1e3 * lat.p50,
                    "p95_ms": 1e3 * lat.p95,
                    "p99_ms": 1e3 * lat.p99,
                    "mean_ms": 1e3 * lat.mean,
                }
            )
        return out


def simulate_migration_timeline(
    initial: ClusterState,
    final_assignment: np.ndarray,
    plan: PlanResult,
    profile: WorkProfile,
    config: ServingConfig,
    *,
    bandwidth: BandwidthModel | None = None,
    transfer_overhead: float = 0.3,
    migration_start: float = 0.0,
    shard_to_engine_shard: list[int] | None = None,
    arrival_times: np.ndarray | None = None,
) -> TimelineWindowReport:
    """Serve one arrival stream while the plan executes wave-by-wave.

    The serving fleet, the migration executor, and the shared
    shard→machine array all live on one event-heap runtime: queries
    arriving during wave *k* see exactly the machines wave *k* is
    derating and exactly the placements earlier waves already landed.
    This is the time-resolved upgrade of
    :func:`simulate_migration_window`, which stays available as the
    static (window-averaged) view.

    ``config.background_load`` still applies, as a *static* base
    derating on top of which transfer derating comes and goes.
    """
    check_positive("transfer_overhead", transfer_overhead)
    if not plan.feasible:
        raise ValueError("cannot execute an infeasible plan on the timeline")
    mapping = (
        np.arange(initial.num_shards)
        if shard_to_engine_shard is None
        else np.asarray(shard_to_engine_shard, dtype=np.int64)
    )
    if mapping.shape != (initial.num_shards,):
        raise ValueError("shard_to_engine_shard must map every cluster shard")
    if np.any((mapping < 0) | (mapping >= profile.num_shards)):
        raise ValueError("shard_to_engine_shard references unknown engine shards")
    if not initial.is_fully_assigned():
        raise ValueError("simulation requires a fully assigned state")
    model = bandwidth or BandwidthModel()
    speed = _effective_speeds(initial, config)

    rng = np.random.default_rng(config.seed)
    arrival_times, num_arrivals = _sample_arrivals(rng, config, arrival_times)
    query_rows = rng.integers(0, profile.num_queries, size=num_arrivals)

    fleet = ServingFleet(speed)
    location = initial.assignment_view().copy()
    arrivals = QueryArrivalProcess(
        fleet, location, profile.work, mapping, arrival_times, query_rows
    )
    executor = MigrationExecutor(
        schedule=plan.schedule,
        fleet=fleet,
        location=location,
        loads=initial.loads.copy(),
        capacity=initial.capacity,
        demand=initial.demand,
        model=model,
        transfer_overhead=transfer_overhead,
        start_at=migration_start,
    )
    runtime = Runtime()
    runtime.add(arrivals)
    runtime.add(executor)
    runtime.run()
    fleet.flush()

    target = np.asarray(final_assignment, dtype=np.int64)
    if not np.array_equal(location, target):
        raise RuntimeError(
            "executed schedule did not land the final assignment; "
            "the plan and final_assignment disagree"
        )
    latencies = arrivals.latencies()
    busy_fraction = _busy_fraction(
        fleet.busy_time(), arrival_times, config, initial.num_machines
    )
    serving = ServingReport(
        latency=summarize(latencies) if num_arrivals else _empty_summary(),
        machine_busy_fraction=busy_fraction,
        queries_completed=int(num_arrivals),
        raw_arrivals=arrival_times.copy(),
        raw_latencies=latencies,
    )
    return TimelineWindowReport(
        serving=serving,
        migration_start=migration_start,
        migration_end=executor.migration_end,
        wave_intervals=tuple(executor.wave_intervals),
        waves_executed=len(executor.wave_intervals),
        bytes_transferred=executor.bytes_transferred,
        peak_transient_utilization=executor.peak_transient_utilization,
    )
