"""Resource schema and vector algebra.

A :class:`ResourceSchema` names the resource dimensions tracked by a
cluster (e.g. CPU, RAM, disk).  All demand and capacity quantities in the
library are dense ``float64`` vectors whose components follow the order of
the schema, which keeps the hot paths (load accounting, objective deltas)
as plain NumPy arithmetic with no per-dimension Python dispatch.

The default schema, :data:`DEFAULT_SCHEMA`, matches the resources that a
search-engine shard stresses: CPU at peak query load, resident memory for
the hot index portion, and disk for the postings files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro._validation import as_demand_array

__all__ = ["ResourceSchema", "DEFAULT_SCHEMA", "dominates", "safe_ratio"]


@dataclass(frozen=True)
class ResourceSchema:
    """An ordered, immutable set of resource dimension names.

    Examples
    --------
    >>> schema = ResourceSchema(("cpu", "ram"))
    >>> schema.dims
    2
    >>> schema.index("ram")
    1
    >>> schema.vector({"ram": 2.0, "cpu": 1.0})
    array([1., 2.])
    """

    names: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.names:
            raise ValueError("ResourceSchema requires at least one dimension")
        if len(set(self.names)) != len(self.names):
            raise ValueError(f"duplicate resource names: {self.names!r}")
        object.__setattr__(self, "names", tuple(str(n) for n in self.names))

    @property
    def dims(self) -> int:
        """Number of resource dimensions."""
        return len(self.names)

    def index(self, name: str) -> int:
        """Position of dimension *name* within vectors of this schema."""
        try:
            return self.names.index(name)
        except ValueError:
            raise KeyError(f"unknown resource {name!r}; schema has {self.names}") from None

    def vector(self, values: Mapping[str, float] | Sequence[float] | float) -> np.ndarray:
        """Build a demand/capacity vector in schema order.

        Accepts a mapping of ``{name: quantity}`` (missing names default to
        zero), a sequence already in schema order, or a scalar broadcast to
        every dimension.
        """
        if isinstance(values, Mapping):
            unknown = set(values) - set(self.names)
            if unknown:
                raise KeyError(f"unknown resources {sorted(unknown)!r}; schema has {self.names}")
            arr = np.array([float(values.get(n, 0.0)) for n in self.names], dtype=np.float64)
            return as_demand_array("values", arr, self.dims)
        if np.isscalar(values):
            return np.full(self.dims, float(values), dtype=np.float64)  # type: ignore[arg-type]
        return as_demand_array("values", values, self.dims)

    def as_mapping(self, vec: np.ndarray) -> dict[str, float]:
        """Inverse of :meth:`vector`: label a vector's components."""
        vec = as_demand_array("vec", vec, self.dims)
        return {name: float(v) for name, v in zip(self.names, vec, strict=True)}

    def __iter__(self) -> Iterator[str]:
        return iter(self.names)

    def __len__(self) -> int:
        return self.dims


#: Default three-dimensional schema used throughout the experiments.
DEFAULT_SCHEMA = ResourceSchema(("cpu", "ram", "disk"))


def dominates(a: np.ndarray, b: np.ndarray, *, atol: float = 1e-9) -> bool:
    """True when vector *a* >= *b* component-wise (within *atol*).

    Used for capacity checks: a machine with headroom ``h`` can accept a
    shard with demand ``r`` iff ``dominates(h, r)``.
    """
    return bool(np.all(np.asarray(a) - np.asarray(b) >= -atol))


def safe_ratio(num: np.ndarray, den: np.ndarray) -> np.ndarray:
    """Element-wise ``num / den`` with 0/0 -> 0 and x/0 -> inf for x > 0.

    Utilization of a zero-capacity dimension is defined as 0 when unused
    and infinite when any demand lands on it, which makes such placements
    trivially worst-ranked rather than crashing.
    """
    num = np.asarray(num, dtype=np.float64)
    den = np.asarray(den, dtype=np.float64)
    out = np.zeros(np.broadcast_shapes(num.shape, den.shape), dtype=np.float64)
    num_b = np.broadcast_to(num, out.shape)
    den_b = np.broadcast_to(den, out.shape)
    nonzero = den_b > 0
    out[nonzero] = num_b[nonzero] / den_b[nonzero]
    out[(~nonzero) & (num_b > 0)] = np.inf
    return out
