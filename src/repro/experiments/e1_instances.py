"""E1 — instance characteristics table (paper analogue: Table 1).

One row per instance of the synthetic and datacenter suites: sizes,
tightness, and the initial imbalance the rebalancers start from.
"""

from __future__ import annotations

from repro.experiments.harness import register
from repro.metrics import imbalance_report
from repro.workloads import datacenter_suite, synthetic_suite


@register("e1")
def run(fast: bool = True) -> list[dict]:
    seeds = (0,) if fast else (0, 1, 2)
    utils = (0.6, 0.9) if fast else (0.6, 0.75, 0.9)
    machines = 20 if fast else 50
    instances = synthetic_suite(utilizations=utils, seeds=seeds, num_machines=machines)
    instances += datacenter_suite(seeds=seeds)
    rows = []
    for name, state in instances:
        rep = imbalance_report(state)
        rows.append(
            {
                "instance": name,
                "machines": state.num_machines,
                "shards": state.num_shards,
                "dims": state.dims,
                "tightness": float(state.mean_utilization().max()),
                "init_peak": rep.peak_utilization,
                "init_cv": rep.cv,
                "init_jain": rep.jain,
            }
        )
    return rows
