"""Multi-epoch online rebalancing.

Production clusters are not rebalanced once: the workload drifts, the
operator rebalances, the workload drifts again.  The quantity that
matters over time is the *trajectory* — peak utilization per epoch and
the cumulative bytes migrated to keep it down.

:class:`OnlineSimulator` runs that loop for any rebalancing **policy**:

* ``"always"``   — rebalance every epoch;
* ``"threshold"``— rebalance only when the drifted peak exceeds
  ``threshold`` (the operationally sensible policy: tolerate mild
  imbalance, act on hotspots);
* ``"never"``    — the do-nothing control.

Exchange machines are borrowed at the start of each rebalancing episode
and returned at its end, exactly as the paper's operational model
prescribes (the pool lends machines per maintenance window, not
permanently).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro._validation import check_non_negative, check_positive
from repro.algorithms import Rebalancer
from repro.cluster import ClusterState, ExchangeLedger, settle_fleet
from repro.online.drift import PopularityDrift
from repro.workloads import make_exchange_machines

__all__ = ["EpochReport", "OnlineSimulator"]

Policy = Literal["always", "threshold", "never"]


@dataclass(frozen=True)
class EpochReport:
    """One epoch of the online loop."""

    epoch: int
    peak_before: float
    peak_after: float
    rebalanced: bool
    feasible: bool
    moves: int
    bytes_moved: float
    cumulative_bytes: float


@dataclass
class OnlineSimulator:
    """Drift → (maybe) rebalance → repeat.

    Attributes
    ----------
    rebalancer:
        The algorithm invoked on rebalancing epochs.
    drift:
        Workload drift model stepped once per epoch.
    policy, threshold:
        When to rebalance (see module docstring).
    exchange_budget:
        Machines borrowed for each rebalancing episode (returned after).
    """

    rebalancer: Rebalancer
    drift: PopularityDrift
    policy: Policy = "always"
    threshold: float = 0.95
    exchange_budget: int = 0

    def __post_init__(self) -> None:
        if self.policy not in ("always", "threshold", "never"):
            raise ValueError(f"unknown policy {self.policy!r}")
        check_positive("threshold", self.threshold)
        check_non_negative("exchange_budget", self.exchange_budget)

    def run(self, state: ClusterState, epochs: int) -> list[EpochReport]:
        """Simulate *epochs* drift/rebalance cycles starting from *state*."""
        check_positive("epochs", epochs)
        current = state
        cumulative = 0.0
        reports: list[EpochReport] = []
        for epoch in range(epochs):
            current = self.drift.step(current)
            peak_before = current.peak_utilization()
            should = self.policy == "always" or (
                self.policy == "threshold" and peak_before > self.threshold
            )
            rebalanced = False
            feasible = True
            moves = 0
            moved_bytes = 0.0
            if should:
                grown, ledger = ExchangeLedger.borrow(
                    current, make_exchange_machines(current, self.exchange_budget)
                )
                result = self.rebalancer.rebalance(grown, ledger)
                if result.feasible:
                    # Keep only the in-service machine set: the episode's
                    # settlement returns machines; we realize that by
                    # projecting the assignment back onto the original
                    # fleet when no borrowed machine retained shards, and
                    # keeping the augmented fleet otherwise.
                    final = grown.copy()
                    final.apply_assignment(result.target_assignment)
                    current, _, _ = settle_fleet(final, ledger)
                    rebalanced = True
                    moves = result.num_moves
                    moved_bytes = (
                        result.plan.schedule.total_bytes() if result.plan else 0.0
                    )
                else:
                    feasible = False
            cumulative += moved_bytes
            reports.append(
                EpochReport(
                    epoch=epoch,
                    peak_before=peak_before,
                    peak_after=current.peak_utilization(),
                    rebalanced=rebalanced,
                    feasible=feasible,
                    moves=moves,
                    bytes_moved=moved_bytes,
                    cumulative_bytes=cumulative,
                )
            )
        return reports

