"""The paper's linearly constrained IP model and exact solvers."""

from repro.model.branch_and_bound import BranchAndBoundSolver
from repro.model.formulation import BuiltModel, ModelConfig, build_model
from repro.model.solver import MilpResult, MilpSolver, lp_relaxation_bound

__all__ = [
    "ModelConfig",
    "BuiltModel",
    "build_model",
    "MilpSolver",
    "BranchAndBoundSolver",
    "MilpResult",
    "lp_relaxation_bound",
]
