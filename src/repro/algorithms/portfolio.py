"""Parallel portfolio search.

LNS is a randomized algorithm: independent seeds explore different
basins, and the *best of K runs* is markedly better than one long run of
the same total budget on rugged instances.  Since runs share nothing,
they parallelize perfectly across processes —
:class:`PortfolioRebalancer` is the classic seed-portfolio pattern:

* spawn K copies of the inner rebalancer with distinct seeds,
* run them on :class:`repro.parallel.ParallelRunner` (``n_jobs``
  workers; 1 = sequential in-process, useful under test runners and on
  single-core boxes) — which also gives the portfolio crash isolation
  and per-arm observability merge for free,
* return the best feasible result by (peak utilization, moves).

The portfolio keeps the historical ``seed = base_seed + k`` arm-seeding
scheme (so arm 0 reproduces a plain SRA run of the base config exactly);
restart fan-outs driven by ``SRAConfig.restarts`` use the
``SeedSequence.spawn`` scheme instead — see ``repro.parallel.seeds``.

Everything shipped to workers is picklable (states carry plain NumPy
arrays and frozen dataclasses), so no shared memory or server process is
needed.
"""

from __future__ import annotations

from dataclasses import replace

from repro._validation import check_positive
from repro.cluster import ClusterState, ExchangeLedger
from repro.algorithms.base import RebalanceResult, Rebalancer
from repro.algorithms.sra import SRA
from repro.algorithms.sra_config import SRAConfig
from repro.parallel import ParallelRunner, TaskSpec

__all__ = ["PortfolioRebalancer"]


def _run_one(
    config: SRAConfig, state: ClusterState, ledger: ExchangeLedger | None
) -> RebalanceResult:
    return SRA(config).rebalance(state, ledger)


class PortfolioRebalancer(Rebalancer):
    """Best-of-K SRA runs, optionally in parallel processes.

    Parameters
    ----------
    base_config:
        SRA configuration template; each run gets ``seed = base_seed + k``.
    runs:
        Portfolio size K.
    n_jobs:
        Worker processes (1 = run sequentially in-process).
    """

    name = "sra-portfolio"

    def __init__(
        self,
        base_config: SRAConfig | None = None,
        *,
        runs: int = 4,
        n_jobs: int = 1,
    ) -> None:
        check_positive("runs", runs)
        check_positive("n_jobs", n_jobs)
        self.base_config = base_config or SRAConfig()
        self.runs = runs
        self.n_jobs = n_jobs

    def rebalance(
        self, state: ClusterState, ledger: ExchangeLedger | None = None
    ) -> RebalanceResult:
        base_seed = self.base_config.alns.seed
        specs = [
            TaskSpec(
                fn=_run_one,
                args=(replace(self.base_config, seed=base_seed + k), state, ledger),
                name=f"portfolio[{k}]",
                seed=base_seed + k,
            )
            for k in range(self.runs)
        ]
        rows = ParallelRunner(self.n_jobs).run(specs)
        results = [row.value for row in rows if row.ok]
        if not results:
            errors = "; ".join(f"{row.name}: {row.error}" for row in rows)
            raise RuntimeError(f"all {self.runs} portfolio arms failed ({errors})")
        best = min(
            results,
            key=lambda r: (not r.feasible, r.peak_after, r.num_moves),
        )
        # Rebrand so result tables show the portfolio, and total the work.
        best.algorithm = self.name
        best.iterations = sum(r.iterations for r in results)
        return best
