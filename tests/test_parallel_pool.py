"""Correctness sweep for the persistent shared-memory restart pool.

Covers the ISSUE 7 surface: the winner-aliasing regression, the
serial/pool exception contract, persistent-pool reuse/crash/timeout
semantics, the shared-memory lifecycle (attach/detach/unlink with no
leaked ``/dev/shm`` segments on any exit path), cooperative incumbent
exchange, and the hypothesis-pinned property that blind-mode pool
results stay bitwise-identical to serial with shm enabled.
"""

import os
import sys
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.algorithms import AlnsConfig, SRA, SRAConfig
from repro.algorithms.lns import AlnsEngine
from repro.algorithms.destroy import DEFAULT_DESTROY_OPS
from repro.algorithms.repair import DEFAULT_REPAIR_OPS
from repro.algorithms.objective import Objective
from repro.cluster import ClusterState
from repro.parallel import (
    IncumbentSlot,
    ParallelRunner,
    TaskSpec,
    attach_state,
    publish_state,
    run_sra_restarts,
)
from repro.parallel.restarts import _init_worker
from repro.parallel.shm import local_incumbent_exchange
from repro.workloads import SyntheticConfig, generate


# ----------------------------------------------------------------- task fns
# Module-level so they stay picklable under any multiprocessing start
# method.

def _square(x):
    return x * x


def _pid(_=None):
    return os.getpid()


def _hard_exit():
    os._exit(7)


def _sleep_forever():
    time.sleep(60)


def _sys_exit():
    sys.exit(3)


def _keyboard_interrupt():
    raise KeyboardInterrupt


def _unpicklable():
    return lambda: None


def _observed_work(n):
    bundle = obs.current()
    bundle.metrics.counter("work.items").inc(n)
    return n


_INIT_SENTINEL = None


def _remember(value):
    global _INIT_SENTINEL
    _INIT_SENTINEL = value


def _recall():
    return _INIT_SENTINEL


def _crashy_init():
    os._exit(9)


def _small_state(seed=3):
    return generate(
        SyntheticConfig(
            num_machines=12,
            shards_per_machine=6,
            target_utilization=0.85,
            placement_skew=0.5,
            max_shard_fraction=0.35,
            seed=seed,
        )
    )


def _shm_names():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux fallback
        return set()


needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="/dev/shm not available"
)


# --------------------------------------------------------------- satellites
class TestWinnerAliasing:
    """run_sra_restarts must not mutate the winning row in place."""

    def test_winner_row_keeps_its_own_iteration_count(self):
        state = _small_state()
        config = SRAConfig(alns=AlnsConfig(iterations=40, seed=5))
        report = run_sra_restarts(state, config=config, restarts=3, n_workers=1)
        succeeded = [r for r in report.results if r.ok]
        total = sum(r.value.iterations for r in succeeded)
        assert report.best.iterations == total
        # Every per-restart row reports its *own* work, and the report's
        # best is a copy, not an alias of a row.
        for row in succeeded:
            assert row.value.iterations <= 40
            assert row.value is not report.best
        assert {r.value.iterations for r in succeeded} != {total}


class TestExceptionContract:
    """Serial and pool paths record the same failure rows — including
    for BaseException subclasses like SystemExit/KeyboardInterrupt."""

    @pytest.mark.parametrize(
        "fn,needle",
        [(_sys_exit, "SystemExit"), (_keyboard_interrupt, "KeyboardInterrupt")],
    )
    def test_base_exceptions_recorded_on_both_paths(self, fn, needle):
        specs = [TaskSpec(fn=fn, name="boom"),
                 TaskSpec(fn=_square, args=(2,), name="ok")]
        for workers in (1, 2):
            rows = ParallelRunner(workers).run(specs)
            assert not rows[0].ok and needle in rows[0].error
            assert rows[1].ok and rows[1].value == 4

    def test_persistent_pool_matches_too(self):
        with ParallelRunner(2, persistent=True) as runner:
            rows = runner.run([TaskSpec(fn=_sys_exit, name="boom"),
                               TaskSpec(fn=_square, args=(2,), name="ok")])
        assert not rows[0].ok and "SystemExit" in rows[0].error
        assert rows[1].ok and rows[1].value == 4


# ---------------------------------------------------------- persistent pool
class TestPersistentPool:
    def test_workers_are_reused_across_runs(self):
        specs = [TaskSpec(fn=_pid, args=(i,)) for i in range(6)]
        with ParallelRunner(2, persistent=True) as runner:
            first = {r.value for r in runner.run(specs)}
            second = {r.value for r in runner.run(specs)}
        assert len(first) <= 2
        assert first == second  # same processes served both batches
        assert os.getpid() not in first

    def test_results_in_task_order(self):
        specs = [TaskSpec(fn=_square, args=(i,)) for i in range(7)]
        with ParallelRunner(3, persistent=True) as runner:
            rows = runner.run(specs)
        assert [r.value for r in rows] == [i * i for i in range(7)]
        assert [r.index for r in rows] == list(range(7))

    def test_crash_is_isolated_and_pool_recovers(self):
        specs = [TaskSpec(fn=_hard_exit, name="die"),
                 TaskSpec(fn=_square, args=(3,), name="ok"),
                 TaskSpec(fn=_square, args=(4,), name="ok2")]
        with ParallelRunner(2, persistent=True) as runner:
            rows = runner.run(specs)
            # The pool must still work after burying a worker.
            again = runner.run([TaskSpec(fn=_square, args=(5,))])
        assert not rows[0].ok and "crashed" in rows[0].error
        assert rows[1].ok and rows[1].value == 9
        assert rows[2].ok and rows[2].value == 16
        assert again[0].ok and again[0].value == 25

    def test_timeout_kills_and_run_completes(self):
        t0 = time.perf_counter()
        with ParallelRunner(2, persistent=True, timeout_s=0.5) as runner:
            rows = runner.run([TaskSpec(fn=_sleep_forever, name="slow"),
                               TaskSpec(fn=_square, args=(4,), name="ok")])
        assert time.perf_counter() - t0 < 30
        assert rows[0].timed_out and not rows[0].ok
        assert rows[1].ok and rows[1].value == 16

    def test_initializer_runs_once_per_worker(self):
        with ParallelRunner(
            2, persistent=True, initializer=_remember, initargs=(41,)
        ) as runner:
            rows = runner.run([TaskSpec(fn=_recall) for _ in range(4)])
        assert [r.value for r in rows] == [41] * 4

    def test_crashy_initializer_fails_tasks_not_hangs(self):
        with ParallelRunner(
            2, persistent=True, initializer=_crashy_init
        ) as runner:
            rows = runner.run([TaskSpec(fn=_square, args=(1,)) for _ in range(3)])
        assert all(not r.ok for r in rows)
        assert all("crashed" in r.error for r in rows)

    def test_unpicklable_result_reported(self):
        with ParallelRunner(2, persistent=True) as runner:
            rows = runner.run([TaskSpec(fn=_unpicklable, name="bad")])
        assert not rows[0].ok and "picklable" in rows[0].error

    def test_close_is_idempotent(self):
        runner = ParallelRunner(2, persistent=True)
        runner.run([TaskSpec(fn=_square, args=(2,))])
        runner.close()
        runner.close()

    def test_obs_merge_identical_to_serial(self):
        specs = [TaskSpec(fn=_observed_work, args=(n,)) for n in (1, 5, 50)]
        with obs.observed() as serial_bundle:
            ParallelRunner(1).run(specs)
        with obs.observed() as pool_bundle:
            with ParallelRunner(2, persistent=True) as runner:
                runner.run(specs)
        assert (
            serial_bundle.metrics.to_dict()["counters"]["work.items"]
            == pool_bundle.metrics.to_dict()["counters"]["work.items"]
            == 56.0
        )


# ------------------------------------------------------------ shm lifecycle
class TestSharedStateLifecycle:
    def test_attach_reconstructs_equivalent_state(self):
        state = _small_state()
        with publish_state(state) as shared:
            attached = attach_state(shared.handle)
            s2 = attached.state
            np.testing.assert_array_equal(s2.assignment, state.assignment)
            np.testing.assert_array_equal(s2.capacity, state.capacity)
            np.testing.assert_array_equal(s2.demand, state.demand)
            np.testing.assert_array_equal(s2.sizes, state.sizes)
            np.testing.assert_array_equal(s2.loads, state.loads)
            np.testing.assert_array_equal(s2.blocked_mask, state.blocked_mask)
            assert s2.peak_utilization() == state.peak_utilization()
            assert [m.cls for m in s2.machines] == [m.cls for m in state.machines]
            assert [sh.replica_of for sh in s2.shards] == [
                sh.replica_of for sh in state.shards
            ]
            s2.validate()
            s2.detach()
            attached.close()

    def test_shared_matrices_are_read_only(self):
        state = _small_state()
        with publish_state(state) as shared:
            attached = attach_state(shared.handle)
            with pytest.raises((ValueError, RuntimeError)):
                attached.state.capacity[0, 0] = 99.0
            attached.state.detach()
            attached.close()

    def test_detach_survives_unlink(self):
        state = _small_state()
        shared = publish_state(state)
        attached = attach_state(shared.handle)
        s2 = attached.state
        s2.detach()
        attached.close()
        shared.close()
        shared.unlink()
        # The state must remain fully usable after the segment is gone.
        s2.validate()
        result = SRA(SRAConfig(alns=AlnsConfig(iterations=10, seed=1))).rebalance(s2)
        assert result.target_assignment.shape == (s2.num_shards,)

    def test_attach_constructor_validates(self):
        state = _small_state()
        with pytest.raises(ValueError, match="capacity"):
            ClusterState.attach(
                state.machines,
                state.shards,
                capacity=state.capacity[:-1],
                demand=state.demand,
                sizes=state.sizes,
                assignment=state.assignment,
            )
        with pytest.raises(ValueError, match="unknown machines"):
            ClusterState.attach(
                state.machines,
                state.shards,
                capacity=state.capacity,
                demand=state.demand,
                sizes=state.sizes,
                assignment=np.full(state.num_shards, 10_000, dtype=np.int64),
            )

    @needs_dev_shm
    def test_no_leak_on_normal_exit(self):
        before = _shm_names()
        state = _small_state()
        config = SRAConfig(alns=AlnsConfig(iterations=20, seed=2))
        run_sra_restarts(state, config=config, restarts=2, n_workers=2)
        assert _shm_names() == before

    @needs_dev_shm
    def test_no_leak_when_worker_crashes(self):
        before = _shm_names()
        state = _small_state()
        shared = publish_state(state)
        try:
            with ParallelRunner(
                2,
                persistent=True,
                initializer=_init_worker,
                initargs=(shared.handle, None, None, 50),
            ) as runner:
                rows = runner.run([TaskSpec(fn=_hard_exit, name="die"),
                                   TaskSpec(fn=_pid, name="ok")])
            assert not rows[0].ok and rows[1].ok
        finally:
            shared.close()
            shared.unlink()
        assert _shm_names() == before

    @needs_dev_shm
    def test_no_leak_when_tasks_time_out(self):
        before = _shm_names()
        state = _small_state()
        config = SRAConfig(alns=AlnsConfig(iterations=5_000_000, seed=2))
        with pytest.raises(RuntimeError, match="restarts failed"):
            run_sra_restarts(
                state, config=config, restarts=2, n_workers=2, timeout_s=0.4
            )
        assert _shm_names() == before

    @needs_dev_shm
    def test_no_leak_cooperative(self):
        before = _shm_names()
        state = _small_state()
        config = SRAConfig(alns=AlnsConfig(iterations=30, seed=2))
        run_sra_restarts(
            state, config=config, restarts=2, n_workers=2,
            cooperative=True, exchange_period=10,
        )
        assert _shm_names() == before


# ------------------------------------------------------------- cooperative
class _PlantedExchange:
    """Fake incumbent channel: hands out one planted incumbent, records
    offers.  Lets the adoption path run deterministically in-process."""

    def __init__(self, planted, period=10):
        self.period = period
        self._planted = planted
        self.offers = []

    def offer(self, objective, assignment, blocked):
        self.offers.append(float(objective))
        return False

    def take(self, objective):
        if self._planted is not None and self._planted[0] < objective - 1e-12:
            planted, self._planted = self._planted, None
            return planted
        return None


class TestCooperativeExchange:
    def test_engine_adopts_planted_incumbent(self):
        state = _small_state()
        objective = Objective(state.assignment, state.sizes)
        engine = AlnsEngine(
            AlnsConfig(iterations=400, seed=11), DEFAULT_DESTROY_OPS, DEFAULT_REPAIR_OPS
        )
        strong = engine.run(state, objective)
        weak_engine = AlnsEngine(
            AlnsConfig(iterations=40, seed=12), DEFAULT_DESTROY_OPS, DEFAULT_REPAIR_OPS
        )
        planted = (
            strong.best_objective,
            strong.best_assignment,
            np.zeros(state.num_machines, dtype=bool),
        )
        exchange = _PlantedExchange(planted, period=10)
        outcome = weak_engine.run(state, objective, exchange=exchange)
        assert outcome.exchange_adopted == 1
        assert outcome.best_objective <= strong.best_objective + 1e-12
        assert exchange.offers, "engine never offered its incumbent"

    def test_blind_mode_unchanged_by_hook_presence(self):
        state = _small_state()
        objective = Objective(state.assignment, state.sizes)
        cfg = AlnsConfig(iterations=60, seed=4)
        a = AlnsEngine(cfg, DEFAULT_DESTROY_OPS, DEFAULT_REPAIR_OPS).run(
            state, objective
        )
        b = AlnsEngine(cfg, DEFAULT_DESTROY_OPS, DEFAULT_REPAIR_OPS).run(
            state, objective, exchange=None
        )
        assert a.best_objective == b.best_objective
        np.testing.assert_array_equal(a.best_assignment, b.best_assignment)
        assert a.exchange_published == a.exchange_adopted == 0

    def test_serial_portfolio_is_deterministic_and_publishes(self):
        state = _small_state()
        config = SRAConfig(alns=AlnsConfig(iterations=60, seed=9))
        with obs.observed() as bundle:
            first = run_sra_restarts(
                state, config=config, restarts=3, n_workers=1,
                cooperative=True, exchange_period=10,
            )
        second = run_sra_restarts(
            state, config=config, restarts=3, n_workers=1,
            cooperative=True, exchange_period=10,
        )
        np.testing.assert_array_equal(
            first.best.target_assignment, second.best.target_assignment
        )
        assert first.best.peak_after == second.best.peak_after
        counters = bundle.metrics.to_dict()["counters"]
        assert counters.get("alns.exchange.published", 0) >= 1

    def test_pool_portfolio_returns_feasible_result(self):
        state = _small_state()
        config = SRAConfig(alns=AlnsConfig(iterations=40, seed=9))
        with obs.observed() as bundle:
            report = run_sra_restarts(
                state, config=config, restarts=3, n_workers=2,
                cooperative=True, exchange_period=10,
            )
        assert report.best.feasible
        assert report.num_failed == 0
        counters = bundle.metrics.to_dict()["counters"]
        assert counters.get("alns.exchange.published", 0) >= 1

    def test_local_exchange_cursor_isolated_per_clone(self):
        ex = local_incumbent_exchange(4, 2, period=5)
        assign = np.zeros(4, dtype=np.int64)
        blocked = np.zeros(2, dtype=bool)
        assert ex.offer(5.0, assign, blocked)
        # The publishing client must not re-adopt its own incumbent...
        assert ex.take(5.0) is None
        # ...but a fresh clone (a new restart) adopts it.
        got = ex.clone().take(9.0)
        assert got is not None and got[0] == 5.0
        # Worse incumbents never displace the slot.
        assert not ex.offer(6.0, assign, blocked)

    def test_incumbent_slot_snapshot(self):
        slot = IncumbentSlot(4, 2)
        try:
            assert slot.snapshot() is None
        finally:
            slot.close()
            slot.unlink()

    def test_cooperative_config_wiring(self):
        cfg = SRAConfig(cooperative=True, exchange_period=25, restarts=2)
        assert cfg.cooperative and cfg.exchange_period == 25
        with pytest.raises(ValueError, match="exchange_period"):
            SRAConfig(exchange_period=0)


# ------------------------------------------------------- bitwise determinism
class TestBlindBitwiseIdentity:
    """ISSUE 7 acceptance: blind pool results (shm enabled) stay
    bitwise-identical to serial."""

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_pool_with_shm_matches_serial(self, seed):
        state = _small_state(seed % 7)
        config = SRAConfig(alns=AlnsConfig(iterations=15, seed=seed))
        serial = run_sra_restarts(state, config=config, restarts=2, n_workers=1)
        pool = run_sra_restarts(
            state, config=config, restarts=2, n_workers=2, use_shm=True
        )
        assert pool.best.peak_after == serial.best.peak_after
        assert pool.best.iterations == serial.best.iterations
        np.testing.assert_array_equal(
            pool.best.target_assignment, serial.best.target_assignment
        )
        for a, b in zip(serial.results, pool.results, strict=True):
            assert a.ok and b.ok
            assert a.value.peak_after == b.value.peak_after
            np.testing.assert_array_equal(
                a.value.target_assignment, b.value.target_assignment
            )
