#!/usr/bin/env python3
"""One spare-machine pool, many clusters.

A datacenter operator holds four spare machines.  Three production
clusters rebalance against the pool in turn: each borrows two machines,
runs SRA, and returns two *vacant* machines — often drained in-service
machines rather than the ones it borrowed.  The audit trail shows the
resource exchange at fleet scope: the pool's size never changes, while
every cluster gets balanced.

Run:  python examples/shared_pool.py
"""

from repro.algorithms import AlnsConfig, SRA, SRAConfig
from repro.experiments.harness import print_table
from repro.pool import MachinePool, rebalance_with_pool
from repro.workloads import SyntheticConfig, generate, make_exchange_machines


def main() -> None:
    template = generate(SyntheticConfig(num_machines=16, shards_per_machine=6, seed=0))
    pool = MachinePool(make_exchange_machines(template, 4))
    print(f"pool opens with {pool.size} spare machines\n")

    rows = []
    for c in range(3):
        state = generate(
            SyntheticConfig(
                num_machines=16,
                shards_per_machine=6,
                target_utilization=0.85,
                placement_skew=0.5,
                max_shard_fraction=0.35,
                seed=c,
            )
        )
        rebalance_with_pool(
            pool,
            state,
            SRA(SRAConfig(alns=AlnsConfig(iterations=800, seed=1))),
            budget=2,
            label=f"cluster-{c}",
        )
        ep = pool.history[-1]
        rows.append(
            {
                "cluster": ep.cluster_label,
                "lent": ep.lent,
                "returned": ep.returned,
                "exchanged": ep.exchanged,
                "peak_before": ep.peak_before,
                "peak_after": ep.peak_after,
                "pool_after": ep.pool_size_after,
            }
        )
    print_table(rows, title="pool episodes")
    exchanged = sum(r["exchanged"] for r in rows)
    print(
        f"\nacross 3 episodes the pool swapped {exchanged} of its machines for "
        "drained in-service machines — same inventory size, fresher clusters."
    )


if __name__ == "__main__":
    main()
