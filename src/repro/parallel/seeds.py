"""Deterministic seed spawning for parallel task fan-out.

The contract (docs/ARCHITECTURE.md, "Parallel execution"): the seed of
task ``i`` is a pure function of ``(master_seed, i)``.  We derive it
from child ``i`` of ``numpy.random.SeedSequence(master_seed).spawn(n)``,
whose spawn keys are assigned by index — so a run of N tasks is
bitwise-reproducible and entirely independent of how many workers
execute it or in which order tasks complete.

Two useful corollaries:

* **prefix stability** — ``spawn_seeds(m, k) == spawn_seeds(m, n)[:k]``
  for ``k <= n``: growing a restart budget never changes the seeds of
  the restarts already planned;
* **independence** — SeedSequence guarantees the spawned streams are
  statistically independent, unlike the classic ``base_seed + i``
  pattern, whose streams can overlap for some bit generators.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_seeds", "spawn_seed"]


def spawn_seeds(master_seed: int, count: int) -> tuple[int, ...]:
    """Per-task seeds for *count* tasks keyed by task index.

    Each seed is a 63-bit non-negative integer (safe for JSON, for
    ``AlnsConfig.seed`` and for ``numpy.random.default_rng``).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    children = np.random.SeedSequence(master_seed).spawn(count)
    return tuple(
        int(child.generate_state(1, np.uint64)[0] >> np.uint64(1))
        for child in children
    )


def spawn_seed(master_seed: int, index: int) -> int:
    """The seed of task *index* (== ``spawn_seeds(master_seed, n)[index]``)."""
    if index < 0:
        raise ValueError(f"index must be >= 0, got {index}")
    return spawn_seeds(master_seed, index + 1)[index]
