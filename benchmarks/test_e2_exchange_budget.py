"""E2 — balance vs exchange budget (exchange-budget figure analogue).

Shape claim: borrowing exchange machines never hurts and ordinarily
helps, with the best budgeted run beating the B=0 run.
"""

from collections import defaultdict

import numpy as np

from repro.experiments import REGISTRY, is_full_run
from repro.experiments.ascii_chart import bar_chart


def test_e2_exchange_budget(benchmark, save_table, save_figure):
    rows = benchmark.pedantic(
        REGISTRY["e2"], kwargs={"fast": not is_full_run()}, rounds=1, iterations=1
    )
    save_table("e2", rows, "E2 — peak utilization vs exchange budget B (R = B)")

    budgets_all = sorted({r["budget_B"] for r in rows})
    mean_peak = [
        float(np.mean([r["peak_after"] for r in rows if r["budget_B"] == b]))
        for b in budgets_all
    ]
    save_figure(
        "e2",
        bar_chart(
            [f"B={b}" for b in budgets_all],
            mean_peak,
            title="E2 — mean peak utilization after SRA vs exchange budget",
        ),
    )

    by_instance = defaultdict(dict)
    for r in rows:
        by_instance[r["instance"]][r["budget_B"]] = r
    for instance, budgets in by_instance.items():
        assert 0 in budgets, f"{instance} missing the B=0 reference"
        base = budgets[0]["peak_after"]
        assert all(r["feasible"] for r in budgets.values()), instance
        best_budgeted = min(
            r["peak_after"] for b, r in budgets.items() if b > 0
        )
        # Exchange machines must not hurt (small tolerance for search noise).
        assert best_budgeted <= base + 0.01, (
            f"{instance}: best budgeted {best_budgeted:.4f} vs B=0 {base:.4f}"
        )
        # And everything improves on the initial placement.
        for r in budgets.values():
            assert r["peak_after"] < r["peak_before"]
