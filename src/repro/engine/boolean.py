"""Conjunctive (AND) retrieval.

Web search front-ends default to conjunctive semantics: a document must
contain **every** query term.  Conjunctive evaluation intersects posting
lists — cheapest when driven by the rarest term — and then scores only
the intersection, so its cost profile differs sharply from disjunctive
BM25 (it is bounded by the *shortest* list, not the sum).

:class:`ConjunctiveScorer` returns BM25-scored results restricted to the
intersection; the work counter counts postings touched (cursor reads of
the driving list + binary probes of the others), comparable to the other
scorers' counters.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_positive
from repro.engine.index import InvertedIndex
from repro.engine.scoring import BM25Scorer, CollectionStats, ScoredDoc
from repro.engine.text import Query

__all__ = ["ConjunctiveScorer", "intersect_postings"]


def intersect_postings(index: InvertedIndex, terms: list[str]) -> tuple[np.ndarray, int]:
    """Doc ids containing **all** *terms*, plus postings-touched count.

    Gallop-free implementation: the rarest list drives; membership in
    each other list is a binary search.  Returns an empty array when any
    term is out of vocabulary.
    """
    plists = []
    for t in dict.fromkeys(terms):
        p = index.postings(t)
        if p is None:
            return np.empty(0, dtype=np.int64), 0
        plists.append(p)
    plists.sort(key=len)
    driver = plists[0]
    work = len(driver)
    candidates = driver.doc_ids
    for other in plists[1:]:
        if candidates.size == 0:
            break
        pos = np.searchsorted(other.doc_ids, candidates)
        work += candidates.size  # one probe per surviving candidate
        pos = np.minimum(pos, len(other) - 1)
        keep = other.doc_ids[pos] == candidates
        candidates = candidates[keep]
    return candidates, work


class ConjunctiveScorer:
    """BM25 over the conjunction of the query terms.

    Shares normalization and idf with :class:`BM25Scorer` (global
    collection statistics supported the same way).
    """

    def __init__(
        self,
        index: InvertedIndex,
        *,
        stats: CollectionStats | None = None,
        k1: float = 1.2,
        b: float = 0.75,
    ) -> None:
        self._bm25 = BM25Scorer(index, stats=stats, k1=k1, b=b)
        self.index = index
        self.k1 = k1

    def search(self, query: Query, k: int = 10) -> tuple[list[ScoredDoc], int]:
        """Top-*k* documents containing every query term."""
        check_positive("k", k)
        terms = list(dict.fromkeys(query.terms))
        docs, work = intersect_postings(self.index, terms)
        if docs.size == 0:
            return [], work
        scorer = self._bm25
        rows = np.array([scorer._id_to_row[int(d)] for d in docs], dtype=np.int64)
        scores = np.zeros(docs.size)
        for term in terms:
            plist = self.index.postings(term)
            pos = np.searchsorted(plist.doc_ids, docs)
            tf = plist.term_freqs[pos].astype(np.float64)
            work += docs.size
            scores += (
                scorer.idf(term) * tf * (self.k1 + 1.0) / (tf + scorer._norm[rows])
            )
        take = min(k, docs.size)
        top = np.argpartition(-scores, take - 1)[:take]
        top = top[np.argsort(-scores[top], kind="stable")]
        results = [ScoredDoc(int(docs[i]), float(scores[i])) for i in top]
        return results, work
