"""Mutable cluster placement state.

:class:`ClusterState` is the data structure every algorithm in the library
manipulates.  It couples an immutable description of the fleet (machine
capacities, shard demands) with the one piece of mutable state — the
assignment array ``assign[j] = machine index`` — and keeps the per-machine
load matrix incrementally up to date so that a single shard move costs
O(d) rather than O(n·d).

Hot-path contract (relied on by the LNS inner loop):

* ``move``/``unassign``/``assign_shard`` update ``loads`` in O(d);
* ``capacity``, ``demand``, ``loads`` are dense ``float64`` arrays safe to
  read (but not write) directly;
* ``copy()`` is a cheap structural copy (arrays copied, descriptions
  shared).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.cluster.machine import Machine
from repro.cluster.resources import ResourceSchema, safe_ratio
from repro.cluster.shard import Shard

__all__ = ["ClusterState", "UNASSIGNED"]

#: Sentinel value in the assignment array for a shard not currently placed
#: (only ever observed transiently, inside destroy/repair cycles).
UNASSIGNED: int = -1


class ClusterState:
    """Machines + shards + a (partial) assignment, with O(d) move updates.

    Parameters
    ----------
    machines:
        Machine descriptions with dense ids ``0..m-1``.
    shards:
        Shard descriptions with dense ids ``0..n-1``.
    assignment:
        Initial assignment: ``assignment[j]`` is the machine id hosting
        shard ``j`` (or :data:`UNASSIGNED`).  Defaults to all unassigned.

    Notes
    -----
    The constructor does **not** require the assignment to respect
    capacities — overloaded clusters are a legitimate input (that is what
    the rebalancer is for).  Use :meth:`is_within_capacity` to test.
    """

    def __init__(
        self,
        machines: Sequence[Machine],
        shards: Sequence[Shard],
        assignment: Sequence[int] | np.ndarray | None = None,
    ) -> None:
        if not machines:
            raise ValueError("ClusterState requires at least one machine")
        if not shards:
            raise ValueError("ClusterState requires at least one shard")
        schema = machines[0].schema
        for mach in machines:
            if mach.schema != schema:
                raise ValueError("all machines must share one resource schema")
        for sh in shards:
            if sh.schema != schema:
                raise ValueError("all shards must share the machines' resource schema")
        if [mach.id for mach in machines] != list(range(len(machines))):
            raise ValueError("machine ids must be dense 0..m-1 in order")
        if [sh.id for sh in shards] != list(range(len(shards))):
            raise ValueError("shard ids must be dense 0..n-1 in order")

        self._schema = schema
        self._machines: tuple[Machine, ...] = tuple(machines)
        self._shards: tuple[Shard, ...] = tuple(shards)
        self._capacity = np.stack([mach.capacity for mach in machines])  # (m, d)
        self._demand = np.stack([sh.demand for sh in shards])  # (n, d)
        self._sizes = np.array([sh.size_bytes for sh in shards], dtype=np.float64)
        self._exchange_mask = np.array([mach.exchange for mach in machines], dtype=bool)

        n = len(shards)
        if assignment is None:
            self._assign = np.full(n, UNASSIGNED, dtype=np.int64)
        else:
            arr = np.asarray(assignment, dtype=np.int64)
            if arr.shape != (n,):
                raise ValueError(f"assignment must have shape ({n},), got {arr.shape}")
            bad = (arr != UNASSIGNED) & ((arr < 0) | (arr >= len(machines)))
            if np.any(bad):
                raise ValueError(f"assignment references unknown machines at shards {np.flatnonzero(bad)}")
            self._assign = arr.copy()
        self._loads = np.zeros_like(self._capacity)
        placed = self._assign != UNASSIGNED
        if np.any(placed):
            np.add.at(self._loads, self._assign[placed], self._demand[placed])
        self._blocked = np.zeros(len(machines), dtype=bool)
        self._offline = np.zeros(len(machines), dtype=bool)
        # Replica groups: logical shard id -> member shard ids (only for
        # shards declaring replica_of >= 0).  Anti-affinity (no two
        # members on one machine) is enforced by the algorithms, checked
        # via replica_conflicts().
        self._replica_of = np.array([sh.replica_of for sh in shards], dtype=np.int64)
        groups: dict[int, list[int]] = {}
        for sh in shards:
            if sh.replica_of >= 0:
                groups.setdefault(sh.replica_of, []).append(sh.id)
        self._replica_groups = {
            g: np.asarray(members, dtype=np.int64) for g, members in groups.items()
        }

    # ---------------------------------------------------------------- sizes
    @property
    def schema(self) -> ResourceSchema:
        """Resource schema shared by all machines and shards."""
        return self._schema

    @property
    def num_machines(self) -> int:
        return len(self._machines)

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def dims(self) -> int:
        return self._schema.dims

    @property
    def machines(self) -> tuple[Machine, ...]:
        return self._machines

    @property
    def shards(self) -> tuple[Shard, ...]:
        return self._shards

    # --------------------------------------------------------------- arrays
    @property
    def capacity(self) -> np.ndarray:
        """(m, d) capacity matrix.  Read-only by convention."""
        return self._capacity

    @property
    def demand(self) -> np.ndarray:
        """(n, d) demand matrix.  Read-only by convention."""
        return self._demand

    @property
    def sizes(self) -> np.ndarray:
        """(n,) migration byte sizes.  Read-only by convention."""
        return self._sizes

    @property
    def loads(self) -> np.ndarray:
        """(m, d) current load matrix, maintained incrementally."""
        return self._loads

    @property
    def exchange_mask(self) -> np.ndarray:
        """(m,) bool mask of machines borrowed from the exchange pool."""
        return self._exchange_mask

    @property
    def assignment(self) -> np.ndarray:
        """Copy of the (n,) assignment array."""
        return self._assign.copy()

    def assignment_view(self) -> np.ndarray:
        """The live assignment array — do not mutate."""
        return self._assign

    # ------------------------------------------------------------ mutation
    def machine_of(self, shard_id: int) -> int:
        """Machine currently hosting *shard_id* (or :data:`UNASSIGNED`)."""
        return int(self._assign[shard_id])

    def unassign(self, shard_id: int) -> int:
        """Remove a shard from its machine; return the former machine id."""
        src = int(self._assign[shard_id])
        if src == UNASSIGNED:
            return UNASSIGNED
        self._loads[src] -= self._demand[shard_id]
        self._assign[shard_id] = UNASSIGNED
        return src

    def assign_shard(self, shard_id: int, machine_id: int) -> None:
        """Place an unassigned shard on *machine_id* (O(d)).

        Raises when the machine is blocked (see :meth:`block_machine`).
        """
        if self._assign[shard_id] != UNASSIGNED:
            raise ValueError(
                f"shard {shard_id} is already on machine {self._assign[shard_id]}; "
                "use move() or unassign() first"
            )
        if not 0 <= machine_id < self.num_machines:
            raise ValueError(f"unknown machine {machine_id}")
        if self._blocked[machine_id]:
            raise ValueError(f"machine {machine_id} is blocked for placement")
        self._assign[shard_id] = machine_id
        self._loads[machine_id] += self._demand[shard_id]

    def move(self, shard_id: int, dst: int) -> int:
        """Move a shard to machine *dst*; return its former machine (O(d))."""
        src = self.unassign(shard_id)
        self.assign_shard(shard_id, dst)
        return src

    def apply_assignment(self, assignment: np.ndarray) -> None:
        """Replace the whole assignment (recomputes loads once, O(n·d))."""
        arr = np.asarray(assignment, dtype=np.int64)
        if arr.shape != (self.num_shards,):
            raise ValueError(f"assignment must have shape ({self.num_shards},), got {arr.shape}")
        bad = (arr != UNASSIGNED) & ((arr < 0) | (arr >= self.num_machines))
        if np.any(bad):
            raise ValueError("assignment references unknown machines")
        self._assign = arr.copy()
        self._loads.fill(0.0)
        placed = self._assign != UNASSIGNED
        if np.any(placed):
            np.add.at(self._loads, self._assign[placed], self._demand[placed])

    # -------------------------------------------------------------- queries
    def utilization(self) -> np.ndarray:
        """(m, d) load / capacity."""
        return safe_ratio(self._loads, self._capacity)

    def machine_peak_utilization(self) -> np.ndarray:
        """(m,) worst-dimension utilization per machine."""
        return self.utilization().max(axis=1)

    def peak_utilization(self) -> float:
        """Cluster-wide peak utilization (the primary imbalance measure)."""
        return float(self.machine_peak_utilization().max())

    def headroom(self) -> np.ndarray:
        """(m, d) remaining capacity (may be negative when overloaded)."""
        return self._capacity - self._loads

    def machine_shards(self, machine_id: int) -> np.ndarray:
        """Shard ids currently hosted by *machine_id* (ascending)."""
        return np.flatnonzero(self._assign == machine_id)

    def shard_counts(self) -> np.ndarray:
        """(m,) number of shards per machine."""
        return np.bincount(
            self._assign[self._assign != UNASSIGNED], minlength=self.num_machines
        )

    def vacant_machines(self) -> np.ndarray:
        """Ids of machines hosting no shard."""
        return np.flatnonzero(self.shard_counts() == 0)

    def unassigned_shards(self) -> np.ndarray:
        """Ids of shards with no machine (transient during destroy/repair)."""
        return np.flatnonzero(self._assign == UNASSIGNED)

    def is_fully_assigned(self) -> bool:
        """True when every shard has a machine."""
        return bool(np.all(self._assign != UNASSIGNED))

    def is_within_capacity(self, *, atol: float = 1e-9) -> bool:
        """True when no machine exceeds capacity in any dimension."""
        return bool(np.all(self._loads <= self._capacity + atol))

    def overloaded_machines(self, *, atol: float = 1e-9) -> np.ndarray:
        """Ids of machines exceeding capacity in some dimension."""
        return np.flatnonzero(np.any(self._loads > self._capacity + atol, axis=1))

    def fits(self, shard_id: int, machine_id: int, *, atol: float = 1e-9) -> bool:
        """Would *shard_id* fit on *machine_id* right now (ignoring its
        current placement if it is already there)?"""
        extra = self._demand[shard_id]
        load = self._loads[machine_id]
        if self._assign[shard_id] == machine_id:
            return bool(np.all(load <= self._capacity[machine_id] + atol))
        return bool(np.all(load + extra <= self._capacity[machine_id] + atol))

    def total_demand(self) -> np.ndarray:
        """(d,) summed demand across all shards."""
        return self._demand.sum(axis=0)

    def total_capacity(self) -> np.ndarray:
        """(d,) summed capacity across all machines."""
        return self._capacity.sum(axis=0)

    def mean_utilization(self) -> np.ndarray:
        """(d,) total demand / total capacity — the tightness of the instance."""
        return safe_ratio(self.total_demand(), self.total_capacity())

    # ------------------------------------------------------------- replicas
    @property
    def replica_groups(self) -> dict[int, np.ndarray]:
        """Logical shard id → member shard ids (replicated shards only)."""
        return self._replica_groups

    def replica_peers(self, shard_id: int) -> np.ndarray:
        """Sibling shard ids of *shard_id* (empty for unreplicated shards)."""
        group = int(self._replica_of[shard_id])
        if group < 0:
            return np.empty(0, dtype=np.int64)
        members = self._replica_groups[group]
        return members[members != shard_id]

    def replica_peer_machines(self, shard_id: int) -> np.ndarray:
        """Machines currently hosting siblings of *shard_id*."""
        peers = self.replica_peers(shard_id)
        if peers.size == 0:
            return peers
        hosts = self._assign[peers]
        return np.unique(hosts[hosts != UNASSIGNED])

    def replica_conflicts(self) -> list[tuple[int, int]]:
        """(machine, logical shard) pairs hosting more than one replica."""
        out: list[tuple[int, int]] = []
        for group, members in self._replica_groups.items():
            hosts = self._assign[members]
            hosts = hosts[hosts != UNASSIGNED]
            uniq, counts = np.unique(hosts, return_counts=True)
            out.extend((int(m), group) for m in uniq[counts > 1])
        return out

    def has_replica_conflicts(self) -> bool:
        """True when any machine hosts two replicas of one logical shard."""
        return bool(self.replica_conflicts())

    # ------------------------------------------------------------- blocking
    @property
    def blocked_mask(self) -> np.ndarray:
        """(m,) bool mask of machines blocked for placement.

        Blocking is how SRA pins its *designated-return* machines: a
        blocked machine accepts no new shard, so it stays vacant by
        construction and can be handed back when the episode settles.
        """
        return self._blocked

    def block_machine(self, machine_id: int) -> None:
        """Forbid placements on *machine_id* (it must currently be vacant)."""
        if not 0 <= machine_id < self.num_machines:
            raise ValueError(f"unknown machine {machine_id}")
        if np.any(self._assign == machine_id):
            raise ValueError(f"cannot block machine {machine_id}: it hosts shards")
        self._blocked[machine_id] = True

    def unblock_machine(self, machine_id: int) -> None:
        """Allow placements on *machine_id* again (not possible for
        offline machines — a dead machine stays dead)."""
        if not 0 <= machine_id < self.num_machines:
            raise ValueError(f"unknown machine {machine_id}")
        if self._offline[machine_id]:
            raise ValueError(f"machine {machine_id} is offline and cannot be unblocked")
        self._blocked[machine_id] = False

    @property
    def offline_mask(self) -> np.ndarray:
        """(m,) bool mask of machines that have failed / left the fleet.

        Offline implies blocked-for-placement, but unlike a blocked
        designated-return machine an offline machine can never be
        unblocked, used as a staging host, swapped by the exchange
        operator, or returned as exchange compensation.
        """
        return self._offline

    def set_offline(self, machine_id: int) -> None:
        """Mark a (vacant) machine as permanently out of service."""
        if not 0 <= machine_id < self.num_machines:
            raise ValueError(f"unknown machine {machine_id}")
        if np.any(self._assign == machine_id):
            raise ValueError(
                f"cannot take machine {machine_id} offline: it hosts shards "
                "(unassign them first)"
            )
        self._offline[machine_id] = True
        self._blocked[machine_id] = True

    # ---------------------------------------------------------------- copy
    def copy(self) -> "ClusterState":
        """Structural copy: shares machine/shard descriptions, copies state."""
        dup = object.__new__(ClusterState)
        dup._schema = self._schema
        dup._machines = self._machines
        dup._shards = self._shards
        dup._capacity = self._capacity
        dup._demand = self._demand
        dup._sizes = self._sizes
        dup._exchange_mask = self._exchange_mask
        dup._assign = self._assign.copy()
        dup._loads = self._loads.copy()
        dup._blocked = self._blocked.copy()
        dup._offline = self._offline.copy()
        dup._replica_of = self._replica_of
        dup._replica_groups = self._replica_groups
        return dup

    def with_extra_machines(self, extra: Iterable[Machine]) -> "ClusterState":
        """New state with *extra* machines appended (ids are rewritten to
        continue the dense sequence); the assignment is preserved.

        This is how borrowed exchange machines join a cluster.
        """
        extra = list(extra)
        machines = list(self._machines) + [
            mach.with_id(self.num_machines + k) for k, mach in enumerate(extra)
        ]
        return ClusterState(machines, self._shards, self._assign)

    def validate(self) -> None:
        """Audit every internal invariant; raise ``ValueError`` on breach.

        Used by tests (and available to users debugging custom state
        manipulations).  Checks: loads match the assignment exactly,
        blocked machines host nothing, offline implies blocked, and the
        replica-group tables agree with the shard descriptions.
        """
        recomputed = np.zeros_like(self._loads)
        placed = self._assign != UNASSIGNED
        if np.any(placed):
            np.add.at(recomputed, self._assign[placed], self._demand[placed])
        if not np.allclose(self._loads, recomputed, atol=1e-6):
            raise ValueError("loads diverged from the assignment")
        counts = self.shard_counts()
        bad = np.flatnonzero(self._blocked & (counts > 0))
        if bad.size:
            raise ValueError(f"blocked machines host shards: {bad.tolist()}")
        if np.any(self._offline & ~self._blocked):
            raise ValueError("offline machines must be blocked")
        for group, members in self._replica_groups.items():
            for j in members:
                if self._shards[int(j)].replica_of != group:
                    raise ValueError(f"replica table inconsistent at shard {j}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterState(m={self.num_machines}, n={self.num_shards}, "
            f"d={self.dims}, peak={self.peak_utilization():.3f})"
        )
