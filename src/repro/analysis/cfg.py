"""Per-function control-flow graphs with exception edges.

:func:`build_cfg` turns one ``ast.FunctionDef`` into a statement-level
:class:`CFG`: every simple statement (and the *header* of every compound
statement — an ``if`` test, a ``while`` test, a ``for`` iterator) is one
node, connected by

* **normal** edges — sequential fall-through, branch targets, loop back
  edges.  Edges leaving a conditional header carry the test expression
  and the branch truth value, so a dataflow client can refine its state
  per branch (:meth:`~repro.analysis.dataflow.ForwardAnalysis.assume`);
* **exception** edges — from every statement that *may raise* (any
  statement containing a call, plus ``raise`` and ``assert``) to the
  innermost enclosing handler dispatch, or to the synthetic
  :attr:`CFG.raise_exit` node when the exception escapes the function.

Two synthetic sinks terminate every path: :attr:`CFG.exit` (normal
return or falling off the end) and :attr:`CFG.raise_exit` (an escaping
exception).  The transaction-balance rule (REP007) proves its invariant
over *both* — the journal-leak bug class lives almost exclusively on the
exception paths no test exercises.

Soundness limits (documented in docs/ARCHITECTURE.md): statements
without calls are assumed not to raise (a bare ``a + b`` can raise
``TypeError``; modelling that would drown real findings in noise), and
``finally`` blocks are built once, entered from both the normal and the
exceptional side and exited to both continuations, which merges paths —
clients doing definite-state reporting lose a little precision, never
soundness, from that merge.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["CFG", "Edge", "build_cfg", "NORMAL", "EXCEPTION"]

NORMAL = "normal"
EXCEPTION = "exception"

#: A frontier entry: (source node, branch condition, branch value).
#: The condition/value pair is carried until the next statement node
#: exists, then stamped onto the connecting edge.
_Frontier = list[tuple[int, "ast.expr | None", "bool | None"]]


@dataclass(frozen=True)
class Edge:
    """One control-flow edge.

    ``cond``/``branch`` are set on edges leaving a conditional header:
    the edge is taken when ``cond`` evaluates to ``branch``.
    """

    src: int
    dst: int
    kind: str = NORMAL
    cond: ast.expr | None = None
    branch: bool | None = None


@dataclass
class CFG:
    """Statement-level control-flow graph of one function.

    ``nodes[i]`` is the AST node represented by node id ``i`` (``None``
    for the synthetic entry/exit/raise-exit/dispatch nodes);
    ``labels[i]`` names every node for debugging and export.
    """

    nodes: list[ast.AST | None] = field(default_factory=list)
    labels: list[str] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)
    entry: int = 0
    exit: int = 0
    raise_exit: int = 0

    def add_node(self, node: ast.AST | None, label: str = "") -> int:
        self.nodes.append(node)
        self.labels.append(label)
        return len(self.nodes) - 1

    def add_edge(
        self,
        src: int,
        dst: int,
        kind: str = NORMAL,
        cond: ast.expr | None = None,
        branch: bool | None = None,
    ) -> None:
        self.edges.append(Edge(src, dst, kind, cond, branch))

    def successors(self, node: int) -> Iterator[Edge]:
        for edge in self.edges:
            if edge.src == node:
                yield edge

    def predecessors(self, node: int) -> Iterator[Edge]:
        for edge in self.edges:
            if edge.dst == node:
                yield edge

    def lineno(self, node_id: int) -> int:
        node = self.nodes[node_id]
        return getattr(node, "lineno", 0) if node is not None else 0


def _header_exprs(stmt: ast.stmt) -> list[ast.AST]:
    """The expressions a compound statement evaluates *at its own node*
    (bodies are separate nodes and excluded)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        # Defining a function/class does not run its body.
        return list(stmt.decorator_list)
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    return [stmt]


def _may_raise(stmt: ast.stmt) -> bool:
    """True when *stmt*'s own evaluation can raise (see module docstring
    for the deliberate under-approximation)."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for expr in _header_exprs(stmt):
        for sub in ast.walk(expr):
            if isinstance(sub, (ast.Call, ast.Await, ast.Yield, ast.YieldFrom)):
                return True
    return False


def _catches_everything(handler: ast.ExceptHandler) -> bool:
    """True for ``except:``, ``except BaseException:`` and — pragmatically,
    documented in ARCHITECTURE.md — ``except Exception:``."""
    if handler.type is None:
        return True
    names: list[str] = []
    for sub in ast.walk(handler.type):
        if isinstance(sub, ast.Name):
            names.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.append(sub.attr)
    return any(name in ("BaseException", "Exception") for name in names)


class _Builder:
    """Recursive-descent CFG construction (one instance per function)."""

    def __init__(self) -> None:
        self.cfg = CFG()
        self.cfg.entry = self.cfg.add_node(None, "entry")
        self.cfg.exit = self.cfg.add_node(None, "exit")
        self.cfg.raise_exit = self.cfg.add_node(None, "raise-exit")
        #: Innermost-first stack of exception targets (dispatch node ids).
        self._handlers: list[int] = []
        #: Innermost-first stack of (loop_header, break_collector) pairs.
        self._loops: list[tuple[int, _Frontier]] = []

    def build(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
        frontier = self._stmts(fn.body, [(self.cfg.entry, None, None)])
        self._connect(frontier, self.cfg.exit)
        return self.cfg

    # ----------------------------------------------------------- plumbing
    def _exception_target(self) -> int:
        return self._handlers[-1] if self._handlers else self.cfg.raise_exit

    def _connect(self, frontier: _Frontier, target: int) -> None:
        for src, cond, branch in frontier:
            self.cfg.add_edge(src, target, NORMAL, cond, branch)

    def _emit(self, stmt: ast.stmt, frontier: _Frontier, label: str = "") -> int:
        """New node for *stmt*, wired from *frontier* plus its exception
        edge when the statement may raise."""
        node = self.cfg.add_node(stmt, label or type(stmt).__name__.lower())
        self._connect(frontier, node)
        if _may_raise(stmt):
            self.cfg.add_edge(node, self._exception_target(), EXCEPTION)
        return node

    # ---------------------------------------------------------- statements
    def _stmts(self, body: list[ast.stmt], frontier: _Frontier) -> _Frontier:
        for stmt in body:
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(self, stmt: ast.stmt, frontier: _Frontier) -> _Frontier:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, ast.While):
            return self._while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier)

        node = self._emit(stmt, frontier)
        if isinstance(stmt, ast.Return):
            self.cfg.add_edge(node, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Raise):
            # _emit already added the exception edge; no fall-through.
            return []
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._loops[-1][1].append((node, None, None))
            return []
        if isinstance(stmt, ast.Continue):
            if self._loops:
                self.cfg.add_edge(node, self._loops[-1][0])
            return []
        return [(node, None, None)]

    def _if(self, stmt: ast.If, frontier: _Frontier) -> _Frontier:
        header = self._emit(stmt, frontier, "if")
        out = self._stmts(stmt.body, [(header, stmt.test, True)])
        if stmt.orelse:
            out = out + self._stmts(stmt.orelse, [(header, stmt.test, False)])
        else:
            out = out + [(header, stmt.test, False)]
        return out

    def _while(self, stmt: ast.While, frontier: _Frontier) -> _Frontier:
        header = self._emit(stmt, frontier, "while")
        breaks: _Frontier = []
        self._loops.append((header, breaks))
        body_exit = self._stmts(stmt.body, [(header, stmt.test, True)])
        self._loops.pop()
        self._connect(body_exit, header)
        while_true = isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        if while_true:
            return list(breaks)
        false_exit: _Frontier = [(header, stmt.test, False)]
        if stmt.orelse:
            false_exit = self._stmts(stmt.orelse, false_exit)
        return list(breaks) + false_exit

    def _for(self, stmt: ast.For | ast.AsyncFor, frontier: _Frontier) -> _Frontier:
        header = self._emit(stmt, frontier, "for")
        breaks: _Frontier = []
        self._loops.append((header, breaks))
        body_exit = self._stmts(stmt.body, [(header, None, None)])
        self._loops.pop()
        self._connect(body_exit, header)
        exhausted: _Frontier = [(header, None, None)]
        if stmt.orelse:
            exhausted = self._stmts(stmt.orelse, exhausted)
        return list(breaks) + exhausted

    def _with(self, stmt: ast.With | ast.AsyncWith, frontier: _Frontier) -> _Frontier:
        header = self._emit(stmt, frontier, "with")
        return self._stmts(stmt.body, [(header, None, None)])

    def _match(self, stmt: ast.Match, frontier: _Frontier) -> _Frontier:
        header = self._emit(stmt, frontier, "match")
        out: _Frontier = [(header, None, None)]  # no case may match
        for case in stmt.cases:
            out = out + self._stmts(case.body, [(header, None, None)])
        return out

    def _try(self, stmt: ast.Try, frontier: _Frontier) -> _Frontier:
        dispatch = self.cfg.add_node(None, "except-dispatch")
        self._handlers.append(dispatch)
        body_exit = self._stmts(stmt.body, frontier)
        self._handlers.pop()

        if stmt.orelse:
            body_exit = self._stmts(stmt.orelse, body_exit)

        handler_exits: _Frontier = []
        caught_all = False
        for handler in stmt.handlers:
            entry = self.cfg.add_node(handler, "except")
            self.cfg.add_edge(dispatch, entry)
            handler_exits = handler_exits + self._stmts(
                handler.body, [(entry, None, None)]
            )
            caught_all = caught_all or _catches_everything(handler)

        if stmt.finalbody:
            fin_entry = self.cfg.add_node(None, "finally")
            self._connect(body_exit + handler_exits, fin_entry)
            # An in-flight exception (no handler matched, or none exist)
            # runs the same finally block, then keeps propagating.
            if not caught_all:
                self.cfg.add_edge(dispatch, fin_entry, EXCEPTION)
            fin_exit = self._stmts(stmt.finalbody, [(fin_entry, None, None)])
            if not caught_all:
                for src, _, _ in fin_exit:
                    self.cfg.add_edge(src, self._exception_target(), EXCEPTION)
            return fin_exit

        if not caught_all:
            # The exception may match no handler and keep propagating.
            self.cfg.add_edge(dispatch, self._exception_target(), EXCEPTION)
        return body_exit + handler_exits


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the CFG of one function (see module docstring)."""
    return _Builder().build(fn)
