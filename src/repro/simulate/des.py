"""Discrete-event simulation of query serving.

The model:

* Queries arrive in a Poisson stream of ``arrival_rate`` per second.
* Each query fans out one task per shard; a task queues FCFS at the
  machine hosting that shard.
* Each machine is a single server whose speed is its CPU capacity times
  ``postings_per_cpu_second`` (postings processed per second), optionally
  derated by per-machine background load (e.g. an in-progress shard
  migration consuming cycles).
* A query completes when its slowest shard task completes; its latency is
  that completion time minus its arrival time.

Fan-out over FCFS queues is what turns one hot machine into a fleet-wide
p99 problem, which is experiment E8's subject.

Since the :mod:`repro.runtime` refactor this module is a **facade**: the
queueing itself runs on the shared event-heap kernel
(:class:`~repro.runtime.machines.ServingFleet` fed by a
:class:`~repro.runtime.serving.QueryArrivalProcess`).  At constant
machine speeds the fleet performs the identical float operations in the
identical order as the original single-pass loop, so ``simulate_serving``
is bit-for-bit its historical self (``tests/test_runtime.py`` pins
this); what the runtime adds is everything the old loop could not do —
speeds that change mid-run while a migration wave saturates a NIC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence, Tuple

import numpy as np

from repro import obs
from repro._validation import check_fraction, check_positive
from repro.cluster import ClusterState
from repro.obs.metrics import LATENCY_EDGES_S, UTILIZATION_EDGES
from repro.runtime.kernel import Runtime
from repro.runtime.machines import ServingFleet
from repro.runtime.serving import QueryArrivalProcess
from repro.simulate.latency import LatencySummary, summarize
from repro.simulate.workprofile import WorkProfile

__all__ = ["ServingConfig", "ServingReport", "simulate_serving"]


@dataclass(frozen=True)
class ServingConfig:
    """Simulation parameters.

    Attributes
    ----------
    arrival_rate:
        Mean query arrivals per second (Poisson).
    duration:
        Seconds of arrivals; the simulation then drains all queues.
    postings_per_cpu_second:
        Machine speed per unit of CPU capacity.
    seed:
        RNG seed for arrivals and query sampling.
    background_load:
        Optional per-machine fraction of capacity consumed by background
        work (machine id → fraction in [0, 1)).
    """

    arrival_rate: float = 50.0
    duration: float = 60.0
    postings_per_cpu_second: float = 2e5
    seed: int = 0
    background_load: Mapping[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive("arrival_rate", self.arrival_rate)
        check_positive("duration", self.duration)
        check_positive("postings_per_cpu_second", self.postings_per_cpu_second)
        for mid, frac in self.background_load.items():
            check_fraction(f"background_load[{mid}]", frac)
            if frac >= 1.0:
                raise ValueError(f"background_load[{mid}] must be < 1")


@dataclass(frozen=True)
class ServingReport:
    """Simulation outputs.

    ``raw_arrivals``/``raw_latencies`` are populated only when the
    simulation is asked to ``capture_raw`` (e.g. for time-of-day
    bucketing); they are parallel arrays in arrival order.
    """

    latency: LatencySummary
    machine_busy_fraction: np.ndarray
    queries_completed: int
    raw_arrivals: np.ndarray | None = None
    raw_latencies: np.ndarray | None = None

    @property
    def peak_busy_fraction(self) -> float:
        """Busiest machine's busy fraction over the **arrival window**.

        Background load included; a value above 1.0 means the machine
        was offered more work than it could serve inside the window
        (the drain spills past it) — i.e. it is overloaded, which is
        exactly what this figure exists to expose.
        """
        return float(self.machine_busy_fraction.max())


def simulate_serving(
    state: ClusterState,
    profile: WorkProfile,
    shard_to_engine_shard: Sequence[int] | None = None,
    config: ServingConfig | None = None,
    *,
    arrival_times: np.ndarray | None = None,
    capture_raw: bool = False,
) -> ServingReport:
    """Simulate query serving against *state*'s current placement.

    Parameters
    ----------
    state:
        Cluster placement; shard ``j``'s machine serves the work of
        engine shard ``shard_to_engine_shard[j]`` (identity by default —
        cluster shards and engine shards coincide).
    profile:
        Measured per-query per-shard work (see :class:`WorkProfile`).
    config:
        Simulation parameters.
    arrival_times:
        Optional explicit arrival times (e.g. a diurnal trace from
        :mod:`repro.simulate.traces`); overrides the Poisson process.
    capture_raw:
        Also return the per-query arrival/latency arrays.

    Notes
    -----
    The CPU dimension of machine capacity sets machine speed.  The
    simulation is deterministic given the seed.
    """
    cfg = config or ServingConfig()
    mapping = (
        np.arange(state.num_shards)
        if shard_to_engine_shard is None
        else np.asarray(shard_to_engine_shard, dtype=np.int64)
    )
    if mapping.shape != (state.num_shards,):
        raise ValueError("shard_to_engine_shard must map every cluster shard")
    if np.any((mapping < 0) | (mapping >= profile.num_shards)):
        raise ValueError("shard_to_engine_shard references unknown engine shards")
    if not state.is_fully_assigned():
        raise ValueError("simulation requires a fully assigned state")

    speed = _effective_speeds(state, cfg)

    rng = np.random.default_rng(cfg.seed)
    arrival_times, num_arrivals = _sample_arrivals(rng, cfg, arrival_times)
    query_rows = rng.integers(0, profile.num_queries, size=num_arrivals)

    o = obs.current()
    with o.tracer.span(
        "simulate.serving",
        machines=state.num_machines,
        shards=state.num_shards,
        arrivals=int(num_arrivals),
        duration=cfg.duration,
    ) as sim_span:
        # Run the arrival process on the shared event-heap kernel.  Speeds
        # are constant here, so the fleet's arithmetic reduces to exactly
        # the historical single-pass loop (see the bitwise contract in
        # repro.runtime.machines).
        fleet = ServingFleet(speed)
        arrivals = QueryArrivalProcess(
            fleet,
            state.assignment_view(),
            profile.work,
            mapping,
            arrival_times,
            query_rows,
        )
        runtime = Runtime()
        runtime.add(arrivals)
        runtime.run()
        fleet.flush()
        latencies = arrivals.latencies()

        busy_fraction = _busy_fraction(
            fleet.busy_time(), arrival_times, cfg, state.num_machines
        )
        report = ServingReport(
            latency=summarize(latencies) if num_arrivals else _empty_summary(),
            machine_busy_fraction=busy_fraction,
            queries_completed=int(num_arrivals),
            raw_arrivals=arrival_times.copy() if capture_raw else None,
            raw_latencies=latencies.copy() if capture_raw else None,
        )
        if o.metrics.enabled:
            m = o.metrics
            m.counter("sim.queries").inc(num_arrivals)
            m.histogram("sim.latency_seconds", LATENCY_EDGES_S).observe_many(latencies)
            if num_arrivals > 1:
                m.histogram("sim.interarrival_seconds", LATENCY_EDGES_S).observe_many(
                    np.diff(arrival_times)
                )
            m.histogram("sim.machine_busy_fraction", UTILIZATION_EDGES).observe_many(
                busy_fraction
            )
            m.gauge("sim.peak_busy_fraction").set(report.peak_busy_fraction)
            for mid in range(state.num_machines):
                m.gauge(f"sim.machine_busy_fraction[{mid}]").set(busy_fraction[mid])
        sim_span.set("peak_busy_fraction", report.peak_busy_fraction)
        if num_arrivals:
            sim_span.set("p99_seconds", report.latency.p99)
    return report


def _effective_speeds(state: ClusterState, cfg: ServingConfig) -> np.ndarray:
    """Per-machine serving speed with background-load derating applied.

    Re-validates each background fraction at use time: ``ServingConfig``
    checks them at construction, but the mapping object itself is
    mutable, and a fraction at or above 1.0 would silently produce a
    zero-or-negative speed (an instantly diverging queue) rather than an
    error.  Shared by ``simulate_serving`` and the time-resolved
    migration window so both modes reject the same bad inputs.
    """
    cpu_idx = state.schema.index("cpu") if "cpu" in state.schema.names else 0
    speed = state.capacity[:, cpu_idx] * cfg.postings_per_cpu_second
    for mid, frac in cfg.background_load.items():
        if not 0 <= mid < state.num_machines:
            raise ValueError(f"background_load references unknown machine {mid}")
        check_fraction(f"background_load[{mid}]", frac)
        if frac >= 1.0:
            raise ValueError(f"background_load[{mid}] must be < 1")
        speed[mid] = speed[mid] * (1.0 - frac)
    return speed


def _sample_arrivals(
    rng: np.random.Generator,
    cfg: ServingConfig,
    arrival_times: np.ndarray | None,
) -> Tuple[np.ndarray, int]:
    """Arrival times and count: the configured Poisson stream, or a
    sorted/validated explicit trace.  RNG draw order is part of the
    reproducibility contract — poisson count, then uniform times — and
    callers draw query rows immediately after."""
    if arrival_times is None:
        num_arrivals = rng.poisson(cfg.arrival_rate * cfg.duration)
        times = np.sort(rng.uniform(0.0, cfg.duration, size=num_arrivals))
        return times, num_arrivals
    times = np.sort(np.asarray(arrival_times, dtype=np.float64))
    if times.size and times[0] < 0:
        raise ValueError("arrival_times must be non-negative")
    return times, int(times.size)


def _busy_fraction(
    busy_time: np.ndarray,
    arrival_times: np.ndarray,
    cfg: ServingConfig,
    num_machines: int,
) -> np.ndarray:
    """Per-machine busy fraction over the arrival window.

    The window is the configured arrival duration (stretched to cover
    explicit arrival times that run past it), **not** the drain-inclusive
    horizon: dividing by the horizon dilutes every machine's figure as
    soon as one machine drains late, understating busyness exactly when
    the fleet is loaded.  Background load occupies its machine for the
    whole window, so its fraction adds on top; a result above 1.0 means
    offered load exceeded capacity (overload).
    """
    window = cfg.duration
    if arrival_times.size:
        window = max(window, float(arrival_times[-1]))
    fraction = busy_time / window
    for mid, frac in cfg.background_load.items():
        fraction[mid] += frac
    return fraction


def _empty_summary() -> LatencySummary:
    return LatencySummary(count=0, mean=0.0, p50=0.0, p90=0.0, p95=0.0, p99=0.0, max=0.0)
