"""Tests for the scenario registry (repro.scenarios)."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import snapshot
from repro.scenarios import (
    ALGORITHMS,
    ParamSpec,
    ScenarioSpec,
    SCENARIOS,
    cell_id,
    generate_instance,
    get_family,
    list_families,
    register_scenario,
    resolve,
    resolve_params,
    run_cell,
    run_matrix,
    save_matrix,
    smoke_specs,
    spec_hash,
)

REQUIRED_FAMILIES = {
    "zipf-popularity",
    "correlated-demand",
    "capacity-headroom",
    "heterogeneous-generations",
    "multi-tenant",
    "failure-storm",
    "replicated-shards",
}

#: Small override sets per family, so property tests run fast.
TINY = {
    "zipf-popularity": {"num_machines": 6, "shards_per_machine": 3},
    "correlated-demand": {"num_machines": 6, "shards_per_machine": 3},
    "capacity-headroom": {"num_machines": 6, "shards_per_machine": 3},
    "heterogeneous-generations": {"num_machines": 12, "shards_per_machine": 6},
    "multi-tenant": {"num_machines": 6, "tenants": 2, "shards_per_tenant": 8},
    "failure-storm": {"num_machines": 8, "shards_per_machine": 3, "waves": 1},
    "replicated-shards": {"num_machines": 8, "shards_per_machine": 4},
}


def snap(state) -> str:
    return json.dumps(snapshot.to_dict(state), sort_keys=True)


class TestRegistry:
    def test_all_required_families_registered(self):
        assert REQUIRED_FAMILIES <= set(SCENARIOS)

    def test_list_families_sorted_with_schemas(self):
        families = list_families()
        names = [f.name for f in families]
        assert names == sorted(names)
        for fam in families:
            assert fam.summary
            assert len(fam.params) > 0
            for p in fam.params:
                assert p.doc, f"{fam.name}.{p.name} lacks a doc string"

    def test_unknown_scenario_lists_alternatives(self):
        with pytest.raises(ValueError, match="zipf-popularity"):
            get_family("no-such-scenario")

    def test_unknown_param_lists_declared(self):
        fam = get_family("zipf-popularity")
        with pytest.raises(ValueError, match="num_machines"):
            resolve_params(fam, {"bogus_knob": 3})

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(
                "zipf-popularity", "dup", (ParamSpec("x", "int", 1),)
            )(lambda params, seed: None)

    def test_defaults_resolve_completely(self):
        for fam in list_families():
            resolved = resolve_params(fam, {})
            assert set(resolved) == {p.name for p in fam.params}


class TestParamCoercion:
    def test_string_values_coerced(self):
        fam = get_family("zipf-popularity")
        resolved = resolve_params(
            fam, {"num_machines": "12", "zipf_alpha": "1.5"}
        )
        assert resolved["num_machines"] == 12
        assert resolved["zipf_alpha"] == 1.5

    def test_out_of_range_rejected_with_param_name(self):
        fam = get_family("zipf-popularity")
        with pytest.raises(ValueError, match="target_utilization"):
            resolve_params(fam, {"target_utilization": 7.5})

    def test_bad_choice_rejected(self):
        fam = get_family("correlated-demand")
        with pytest.raises(ValueError, match="demand_dist"):
            resolve_params(fam, {"demand_dist": "lognormal"})

    def test_bool_param_accepts_strings(self):
        fam = get_family("failure-storm")
        assert resolve_params(fam, {"reassign_orphans": "false"})[
            "reassign_orphans"
        ] is False
        assert resolve_params(fam, {"reassign_orphans": "true"})[
            "reassign_orphans"
        ] is True

    @given(
        util=st.one_of(
            st.floats(max_value=0.049, allow_nan=False, allow_infinity=False),
            st.floats(min_value=0.981, allow_nan=False, allow_infinity=False),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_out_of_range_always_rejected(self, util):
        fam = get_family("zipf-popularity")
        with pytest.raises(ValueError, match="target_utilization"):
            resolve_params(fam, {"target_utilization": util})


class TestSpecHash:
    def test_stable_across_param_orderings(self):
        a = ScenarioSpec(
            "zipf-popularity",
            {"num_machines": 6, "shards_per_machine": 3, "zipf_alpha": 1.4},
            seed=7,
        )
        b = ScenarioSpec(
            "zipf-popularity",
            {"zipf_alpha": 1.4, "shards_per_machine": 3, "num_machines": 6},
            seed=7,
        )
        assert resolve(a)[2] == resolve(b)[2]

    def test_explicit_default_and_omitted_default_hash_equal(self):
        # The hash covers *resolved* params, so writing out a default is
        # the same spec as omitting it.
        base = ScenarioSpec("zipf-popularity", {"num_machines": 6}, seed=0)
        spelled = ScenarioSpec(
            "zipf-popularity", {"num_machines": 6, "zipf_alpha": 1.1}, seed=0
        )
        assert resolve(base)[2] == resolve(spelled)[2]

    def test_hash_varies_with_seed_params_and_scenario(self):
        digests = {
            resolve(ScenarioSpec("zipf-popularity", {}, seed=0))[2],
            resolve(ScenarioSpec("zipf-popularity", {}, seed=1))[2],
            resolve(ScenarioSpec("zipf-popularity", {"num_machines": 9}, seed=0))[2],
            resolve(ScenarioSpec("correlated-demand", {}, seed=0))[2],
        }
        assert len(digests) == 4

    def test_spec_hash_is_short_hex(self):
        digest = spec_hash("zipf-popularity", {"num_machines": 6}, 0)
        assert len(digest) == 12
        int(digest, 16)

    def test_roundtrip_through_dict(self):
        spec = ScenarioSpec("failure-storm", {"waves": 2}, seed=3)
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert resolve(spec)[2] == resolve(again)[2]


class TestGeneration:
    @pytest.mark.parametrize("name", sorted(REQUIRED_FAMILIES))
    def test_instances_validate(self, name):
        state = generate_instance(ScenarioSpec(name, TINY[name], seed=0))
        state.validate()
        assert state.num_shards > 0

    @given(
        name=st.sampled_from(sorted(REQUIRED_FAMILIES)),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_deterministic_per_seed(self, name, seed):
        spec = ScenarioSpec(name, TINY[name], seed=seed)
        first = generate_instance(spec)
        first.validate()
        assert snap(first) == snap(generate_instance(spec))

    @given(
        name=st.sampled_from(sorted(REQUIRED_FAMILIES)),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_varies_with_seed(self, name, seed):
        a = generate_instance(ScenarioSpec(name, TINY[name], seed=seed))
        b = generate_instance(ScenarioSpec(name, TINY[name], seed=seed + 1))
        assert snap(a) != snap(b)

    def test_failure_storm_has_offline_machines(self):
        state = generate_instance(
            ScenarioSpec("failure-storm", TINY["failure-storm"], seed=0)
        )
        assert int(state.offline_mask.sum()) >= 1
        # Orphans were reabsorbed by default: everything is assigned.
        assert np.all(state.assignment >= 0)

    def test_failure_storm_unassigned_orphans(self):
        state = generate_instance(
            ScenarioSpec(
                "failure-storm",
                {**TINY["failure-storm"], "reassign_orphans": False},
                seed=0,
            )
        )
        assert np.any(state.assignment < 0)

    def test_replicated_shards_have_groups(self):
        state = generate_instance(
            ScenarioSpec("replicated-shards", TINY["replicated-shards"], seed=0)
        )
        assert len(state.replica_groups) > 0
        assert not state.has_replica_conflicts()

    def test_heterogeneous_tiers_ladder(self):
        state = generate_instance(
            ScenarioSpec(
                "heterogeneous-generations",
                {**TINY["heterogeneous-generations"], "tiers": 4},
                seed=0,
            )
        )
        assert {m.cls for m in state.machines} <= {"gen1", "gen2", "gen3", "gen4"}


class TestSuitesUseSpecs:
    def test_suite_specs_match_materialized_suite(self):
        from repro.workloads import suites

        specs = suites.suite_specs("tight")
        built = suites.tight_suite()
        assert [n for n, _ in specs] == [n for n, _ in built]
        for (_, spec), (_, state) in zip(specs, built):
            assert snap(generate_instance(spec)) == snap(state)

    def test_unknown_suite_rejected(self):
        from repro.workloads import suites

        with pytest.raises(ValueError, match="datacenter"):
            suites.suite_specs("nope")


class TestMatrix:
    def test_run_cell_rows_deterministic_and_clock_free(self):
        spec = ScenarioSpec("zipf-popularity", TINY["zipf-popularity"], seed=0)
        rows = run_cell(spec.to_dict(), "greedy", 10)
        again = run_cell(spec.to_dict(), "greedy", 10)
        assert json.dumps(rows, sort_keys=True) == json.dumps(again, sort_keys=True)
        for key in rows[0]:
            assert "time" not in key and "duration" not in key

    def test_run_cell_unknown_algorithm(self):
        spec = ScenarioSpec("zipf-popularity", TINY["zipf-popularity"], seed=0)
        with pytest.raises(ValueError, match="greedy"):
            run_cell(spec.to_dict(), "annealing", 10)

    def test_matrix_cross_product_and_artifacts(self, tmp_path):
        specs = [
            ScenarioSpec("zipf-popularity", TINY["zipf-popularity"], seed=0),
            ScenarioSpec("failure-storm", TINY["failure-storm"], seed=0),
        ]
        cells = run_matrix(specs, ["greedy", "noop"], iterations=10)
        assert [c.cell for c in cells] == [
            cell_id(s, a) for s in specs for a in ("greedy", "noop")
        ]
        assert all(c.ok for c in cells)
        out = save_matrix(cells, tmp_path / "mat")
        index = json.loads((out / "index.json").read_text())
        assert set(index) == {c.cell for c in cells}
        for cell in cells:
            assert (out / f"{cell.cell}.json").exists()
            assert (out / f"{cell.cell}.txt").exists()
            assert index[cell.cell]["spec_hash"] == cell.spec_hash

    def test_matrix_rejects_unknown_algorithm_before_running(self):
        specs = [ScenarioSpec("zipf-popularity", TINY["zipf-popularity"], seed=0)]
        with pytest.raises(ValueError, match="available"):
            run_matrix(specs, ["greedy", "annealing"], iterations=10)

    def test_smoke_specs_resolve(self):
        specs = smoke_specs()
        assert len(specs) >= 3
        assert len({s.scenario for s in specs}) >= 3
        for spec in specs:
            resolve(spec)

    def test_algorithm_axis_covers_sra_and_baselines(self):
        assert {"sra", "portfolio", "greedy", "local-search", "noop"} <= set(
            ALGORITHMS
        )

    def test_baselines_respect_offline_machines(self):
        spec = ScenarioSpec("failure-storm", TINY["failure-storm"], seed=0)
        for algo in ("sra", "greedy", "local-search", "noop"):
            rows = run_cell(spec.to_dict(), algo, 10)
            assert rows[0]["offline_machines"] >= 1, algo
