"""E14 — MaxScore pruning: work savings and latency effect (extension).

Shape claims: multi-term queries save a meaningful fraction of postings
(savings grow with query length); the cheaper service times translate
into lower tail latency at the same arrival rate.
"""

from repro.experiments import REGISTRY, is_full_run


def test_e14_pruning(benchmark, save_table):
    rows = benchmark.pedantic(
        REGISTRY["e14"], kwargs={"fast": not is_full_run()}, rounds=1, iterations=1
    )
    save_table("e14", rows, "E14 — MaxScore vs exhaustive: postings and latency")

    work = [r for r in rows if r["series"] == "work"]
    latency = {r["strategy"]: r for r in rows if r["series"] == "latency"}

    assert work and set(latency) == {"exhaustive", "maxscore"}
    multi = [r for r in work if r["query_len"] >= 3]
    assert multi, "query stream lacked multi-term queries"
    # Meaningful savings on multi-term queries.
    assert max(r["savings_pct"] for r in multi) > 15.0
    # Never pathologically worse on any length bucket.
    assert all(r["savings_pct"] > -25.0 for r in work)
    # Serving: cheaper evaluation lowers the tail.
    assert latency["maxscore"]["p99_ms"] < latency["exhaustive"]["p99_ms"]
    assert latency["maxscore"]["peak_busy"] < latency["exhaustive"]["peak_busy"]
