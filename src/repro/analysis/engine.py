"""Rule registry and the lint driver.

A rule is a subclass of :class:`Rule` registered with :func:`register`;
the driver (:func:`lint_paths`) walks the target tree, builds one
:class:`~repro.analysis.context.ModuleContext` per ``.py`` file, runs
every (selected) rule over it, drops findings covered by inline
``# repro: allow-<rule>`` suppressions, and returns the survivors in
deterministic (file, line, rule) order.

The engine is deliberately zero-dependency (stdlib ``ast`` only): the
invariants it checks — seeded determinism, simulated-time discipline,
transactional state mutation — are exactly the ones that must hold in
minimal environments where ruff/mypy may not be installed.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding

__all__ = ["Rule", "register", "all_rules", "get_rule", "lint_paths", "lint_source"]


class Rule:
    """Base class for one invariant check.

    Subclasses set :attr:`rule_id` (``REPnnn``), :attr:`slug` (the
    suppression token), :attr:`description`, and implement
    :meth:`check`, yielding findings for one module.  :meth:`applies_to`
    scopes the rule by repo-relative path; the default is all of
    ``src/repro``.
    """

    rule_id: str = ""
    slug: str = ""
    description: str = ""

    def applies_to(self, rel: str) -> bool:
        return rel.startswith("src/repro/")

    def check(self, mod: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, mod: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            file=mod.rel,
            line=getattr(node, "lineno", 0),
            rule_id=self.rule_id,
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of *cls* to the registry."""
    rule = cls()
    if not rule.rule_id or not rule.slug:
        raise ValueError(f"{cls.__name__} must define rule_id and slug")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> tuple[Rule, ...]:
    """Registered rules in rule-id order."""
    return tuple(_REGISTRY[k] for k in sorted(_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id.upper()]


def _iter_py_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py":
            yield path


def lint_source(
    source: str,
    rel: str,
    *,
    rules: Iterable[Rule] | None = None,
    path: Path | None = None,
) -> list[Finding]:
    """Lint one in-memory module (the unit the fixture tests drive)."""
    mod = ModuleContext(path or Path(rel), rel, source)
    out: list[Finding] = []
    for rule in rules if rules is not None else all_rules():
        if not rule.applies_to(rel):
            continue
        for finding in rule.check(mod):
            if not mod.is_suppressed(finding.line, rule.rule_id, rule.slug):
                out.append(finding)
    return sorted(out)


def lint_paths(
    paths: Sequence[Path],
    root: Path,
    *,
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Lint every ``.py`` file under *paths*; findings are repo-relative
    to *root* and sorted (file, line, rule)."""
    selected = tuple(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    for path in _iter_py_files(paths):
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        source = path.read_text(encoding="utf-8")
        try:
            findings.extend(lint_source(source, rel, rules=selected, path=path))
        except SyntaxError as exc:  # pragma: no cover - repo parses today
            findings.append(
                Finding(rel, exc.lineno or 0, "REP000", f"syntax error: {exc.msg}")
            )
    return sorted(findings)
