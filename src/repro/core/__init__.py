"""Public facade of the library."""

from repro.core.rebalancer import ResourceExchangeRebalancer
from repro.core.report import RebalanceReport

__all__ = ["ResourceExchangeRebalancer", "RebalanceReport"]
