"""Replica-aware query routing.

With a replicated index, each query must reach **one replica of each
logical shard**; the broker's choice of replica is a second, fast-acting
load-balancing mechanism layered on top of placement.  This module
simulates the classic routing policies:

* ``random``       — uniform random replica (stateless);
* ``round_robin``  — per-logical-shard rotation (stateless per query,
  deterministic);
* ``least_loaded`` — join-the-shortest-queue on the hosting machine's
  current backlog (what load-aware brokers approximate with health
  probes).

Placement decides how good routing *can* be (replicas of hot shards on
hot machines leave no good choice); experiment E16 quantifies the
interaction.
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from repro._validation import check_in
from repro.cluster import ClusterState
from repro.simulate.des import ServingConfig, ServingReport, _busy_fraction, _empty_summary
from repro.simulate.latency import summarize
from repro.simulate.workprofile import WorkProfile

__all__ = ["RoutingPolicy", "simulate_routed_serving"]

RoutingPolicy = Literal["random", "round_robin", "least_loaded"]


def simulate_routed_serving(
    state: ClusterState,
    profile: WorkProfile,
    logical_of: Sequence[int],
    config: ServingConfig | None = None,
    *,
    policy: RoutingPolicy = "least_loaded",
) -> ServingReport:
    """Simulate serving where each logical shard is served by ONE replica.

    Parameters
    ----------
    state:
        Cluster placement; ``logical_of[j]`` is the engine/logical shard
        cluster shard ``j`` replicates (several cluster shards may map to
        one logical shard).
    profile:
        Per-query work per **logical** shard.
    policy:
        Replica selection policy (see module docstring).

    Machines are single-server FCFS exactly as in
    :func:`repro.simulate.des.simulate_serving`; with one replica per
    logical shard the two simulators agree.
    """
    cfg = config or ServingConfig()
    check_in("policy", policy, ("random", "round_robin", "least_loaded"))
    logical = np.asarray(logical_of, dtype=np.int64)
    if logical.shape != (state.num_shards,):
        raise ValueError("logical_of must map every cluster shard")
    if np.any((logical < 0) | (logical >= profile.num_shards)):
        raise ValueError("logical_of references unknown logical shards")
    if not state.is_fully_assigned():
        raise ValueError("simulation requires a fully assigned state")

    # Replica sets per logical shard.
    groups: dict[int, np.ndarray] = {
        int(g): np.flatnonzero(logical == g) for g in np.unique(logical)
    }
    covered = sorted(groups)

    cpu_idx = state.schema.index("cpu") if "cpu" in state.schema.names else 0
    speed = state.capacity[:, cpu_idx] * cfg.postings_per_cpu_second
    for mid, frac in cfg.background_load.items():
        if not 0 <= mid < state.num_machines:
            raise ValueError(f"background_load references unknown machine {mid}")
        speed[mid] = speed[mid] * (1.0 - frac)

    rng = np.random.default_rng(cfg.seed)
    num_arrivals = rng.poisson(cfg.arrival_rate * cfg.duration)
    arrival_times = np.sort(rng.uniform(0.0, cfg.duration, size=num_arrivals))
    query_rows = rng.integers(0, profile.num_queries, size=num_arrivals)

    assign = state.assignment_view()
    free_at = np.zeros(state.num_machines)
    busy_time = np.zeros(state.num_machines)
    rr_counter: dict[int, int] = {g: 0 for g in covered}

    latencies = np.empty(num_arrivals)
    for qi in range(num_arrivals):
        t = arrival_times[qi]
        row = profile.work[query_rows[qi]]
        finish_max = t
        for g in covered:
            w = row[g]
            if w <= 0:
                continue
            replicas = groups[g]
            if replicas.size == 1 or policy == "random":
                j = int(replicas[0]) if replicas.size == 1 else int(rng.choice(replicas))
            elif policy == "round_robin":
                j = int(replicas[rr_counter[g] % replicas.size])
                rr_counter[g] += 1
            else:  # least_loaded: shortest backlog on the hosting machine
                hosts = assign[replicas]
                j = int(replicas[int(np.argmin(free_at[hosts]))])
            m = assign[j]
            start = max(t, free_at[m])
            service = w / speed[m]
            free_at[m] = start + service
            busy_time[m] += service
            if free_at[m] > finish_max:
                finish_max = free_at[m]
        latencies[qi] = finish_max - t

    # Same arrival-window convention as simulate_serving (see
    # repro.simulate.des._busy_fraction): drain time does not dilute the
    # fractions, background load adds on top.
    return ServingReport(
        latency=summarize(latencies) if num_arrivals else _empty_summary(),
        machine_busy_fraction=_busy_fraction(
            busy_time, arrival_times, cfg, state.num_machines
        ),
        queries_completed=int(num_arrivals),
    )
