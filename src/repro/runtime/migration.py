"""Executes a wave schedule in simulated time against a serving fleet.

The :class:`~repro.migration.scheduler.WaveScheduler` decides *what* can
run concurrently; this module decides *when*.  Each wave occupies a
simulated interval whose length comes from the
:class:`~repro.migration.costmodel.BandwidthModel` (busiest endpoint
NIC); while a machine's NIC is actively transferring it loses
``transfer_overhead`` of its serving speed (the time-resolved version of
the static average derating in :mod:`repro.simulate.migration_load`),
and every move's shard demand is held on **both** endpoints — the
paper's transient resource constraint — from wave start until the wave
completes, at which point sources release, the shard's serving location
flips to the destination, and the next wave begins.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro import obs
from repro._validation import check_fraction, check_non_negative
from repro.migration.costmodel import BandwidthModel
from repro.migration.scheduler import Schedule
from repro.runtime.kernel import Runtime
from repro.runtime.machines import FCFSMachine, ServingFleet

__all__ = ["MigrationExecutor"]


class MigrationExecutor:
    """Run *schedule* wave-by-wave on the shared simulated clock.

    Parameters
    ----------
    schedule:
        A feasible wave schedule (stranded moves are a planning failure
        and are rejected here).
    fleet:
        Serving machines to derate while their NICs transfer.  May be
        None for serving-free executions (e.g. the online facade's
        instantaneous mode never constructs an executor at all, but
        tests exercise pure-migration runs).
    location:
        Shared (num_shards,) shard → machine array; flipped to each
        move's destination when its wave completes.
    loads / capacity / demand:
        Per-machine load and capacity matrices plus per-shard demand
        vectors, used to track the transient (dual-hold) utilization.
        ``loads`` is mutated as waves retire; pass a copy.
    model:
        Bandwidth model; wave durations and per-machine busy seconds use
        the same per-wave accounting as ``BandwidthModel.cost``.
    transfer_overhead:
        Serving-speed fraction lost while a machine's NIC transfers.
    start_at:
        Simulated time the first wave begins.
    on_complete:
        Called with the runtime once the last wave has retired.
    """

    def __init__(
        self,
        *,
        schedule: Schedule,
        location: np.ndarray,
        loads: np.ndarray,
        capacity: np.ndarray,
        demand: np.ndarray,
        fleet: Optional[ServingFleet] = None,
        model: Optional[BandwidthModel] = None,
        transfer_overhead: float = 0.3,
        start_at: float = 0.0,
        on_complete: Optional[Callable[[Runtime], None]] = None,
    ) -> None:
        if not schedule.feasible:
            raise ValueError(
                f"cannot execute an infeasible schedule ({len(schedule.stranded)} "
                "stranded moves); stage the plan first"
            )
        check_fraction("transfer_overhead", transfer_overhead)
        if transfer_overhead >= 1.0:
            raise ValueError("transfer_overhead must be < 1")
        check_non_negative("start_at", start_at)
        self.schedule = schedule
        self.fleet = fleet
        self.location = location
        self.loads = loads
        self.capacity = capacity
        self.demand = demand
        self.model = model or BandwidthModel()
        self.transfer_overhead = transfer_overhead
        self.start_at = start_at
        self.on_complete = on_complete
        self.in_flight = np.zeros_like(loads)
        self.bytes_transferred: float = 0.0
        self.wave_intervals: List[Tuple[float, float]] = []
        self.peak_transient_utilization: float = 0.0
        self.done = False
        self._wave_index = 0
        self._num_machines = int(loads.shape[0])

    # ------------------------------------------------------------------ hooks
    def start(self, rt: Runtime) -> None:
        if not self.schedule.waves:
            rt.at(self.start_at, self._finish)
            return
        rt.at(self.start_at, self._start_wave)

    @property
    def migration_end(self) -> float:
        """End of the last started wave (meaningful once running)."""
        return self.wave_intervals[-1][1] if self.wave_intervals else self.start_at

    def transient_loads(self) -> np.ndarray:
        """Current per-machine loads including in-flight dual holds."""
        return self.loads + self.in_flight

    # ----------------------------------------------------------------- events
    def _start_wave(self, rt: Runtime) -> None:
        now = rt.now
        wave = self.schedule.waves[self._wave_index]
        busy = self.model.machine_wave_seconds(wave, self._num_machines)
        duration = float(busy.max(initial=0.0))
        for mv in wave:
            self.in_flight[mv.dst] += self.demand[mv.shard_id]
        peak = float(np.max(self.transient_loads() / self.capacity))
        if peak > self.peak_transient_utilization:
            self.peak_transient_utilization = peak
        if self.fleet is not None and duration > 0:
            for m in np.flatnonzero(busy > 0):
                machine = self.fleet.machines[int(m)]
                machine.set_derate(now, self.transfer_overhead)
                if busy[m] < duration:
                    # NIC drains before the wave barrier: restore early.
                    rt.at(now + float(busy[m]), _restore(machine))
        self.wave_intervals.append((now, now + duration))
        o = obs.current()
        if o.tracer.enabled:
            o.tracer.event(
                "runtime.wave.start",
                wave=self._wave_index,
                moves=len(wave),
                bytes=float(sum(mv.bytes for mv in wave)),
                duration=duration,
                transient_peak=peak,
            )
        rt.at(now + duration, self._complete_wave)

    def _complete_wave(self, rt: Runtime) -> None:
        wave = self.schedule.waves[self._wave_index]
        for mv in wave:
            d = self.demand[mv.shard_id]
            self.loads[mv.src] -= d
            self.loads[mv.dst] += d
            self.in_flight[mv.dst] -= d
            self.location[mv.shard_id] = mv.dst
            self.bytes_transferred += mv.bytes
        if self.fleet is not None:
            for mv in wave:
                self.fleet.machines[mv.src].clear_derate(rt.now)
                self.fleet.machines[mv.dst].clear_derate(rt.now)
        o = obs.current()
        if o.tracer.enabled:
            o.tracer.event(
                "runtime.wave.complete", wave=self._wave_index, t=rt.now
            )
        self._wave_index += 1
        if self._wave_index < len(self.schedule.waves):
            self._start_wave(rt)
        else:
            self._finish(rt)

    def _finish(self, rt: Runtime) -> None:
        self.done = True
        o = obs.current()
        if o.metrics.enabled:
            o.metrics.gauge("runtime.peak_transient_utilization").set(
                self.peak_transient_utilization
            )
            o.metrics.counter("runtime.waves").inc(len(self.wave_intervals))
            o.metrics.counter("runtime.bytes_transferred").inc(self.bytes_transferred)
        if o.tracer.enabled:
            o.tracer.event(
                "runtime.migration.complete",
                waves=len(self.wave_intervals),
                bytes=self.bytes_transferred,
                transient_peak=self.peak_transient_utilization,
            )
        if self.on_complete is not None:
            self.on_complete(rt)


def _restore(machine: FCFSMachine) -> Callable[[Runtime], None]:
    """Bind an early NIC-drain restore callback to *machine*."""

    def _cb(rt: Runtime) -> None:
        machine.clear_derate(rt.now)

    return _cb
