"""Search-engine substrate: corpus, inverted index, BM25, sharding, broker."""

from repro.engine.boolean import ConjunctiveScorer, intersect_postings
from repro.engine.broker import BrokerResponse, SearchBroker
from repro.engine.index import InvertedIndex, Postings
from repro.engine.pruning import MaxScoreScorer
from repro.engine.scoring import BM25Scorer, CollectionStats, ScoredDoc
from repro.engine.sharding import ShardedIndex, partition_documents
from repro.engine.text import (
    CorpusConfig,
    Document,
    Query,
    generate_corpus,
    generate_queries,
    tokenize,
)

__all__ = [
    "tokenize",
    "Document",
    "Query",
    "CorpusConfig",
    "generate_corpus",
    "generate_queries",
    "InvertedIndex",
    "Postings",
    "BM25Scorer",
    "CollectionStats",
    "ScoredDoc",
    "MaxScoreScorer",
    "ConjunctiveScorer",
    "intersect_postings",
    "ShardedIndex",
    "partition_documents",
    "SearchBroker",
    "BrokerResponse",
]
