#!/usr/bin/env python3
"""A week in the life of a search cluster: drift, rebalance, repeat.

Simulates eight epochs of query-popularity drift over a 16-machine
cluster and compares three operational policies:

* never rebalance        — watch the peak walk past 100%;
* rebalance on threshold — act only when the peak crosses 92%;
* rebalance every epoch  — best balance, most bytes moved.

Each rebalancing episode borrows one exchange machine and returns one,
per the paper's operational model.

Run:  python examples/online_drift.py
"""

from repro.algorithms import AlnsConfig, SRA, SRAConfig
from repro.experiments.harness import print_table
from repro.online import OnlineSimulator, PopularityDrift
from repro.workloads import SyntheticConfig, generate


def main() -> None:
    state = generate(
        SyntheticConfig(
            num_machines=16,
            shards_per_machine=6,
            target_utilization=0.75,
            placement_skew=0.0,
            max_shard_fraction=0.35,
            seed=0,
        )
    )
    print(f"initial peak: {state.peak_utilization():.3f} at 75% tightness\n")

    rows = []
    for policy, threshold in (("never", 1.0), ("threshold", 0.92), ("always", 1.0)):
        sim = OnlineSimulator(
            rebalancer=SRA(SRAConfig(alns=AlnsConfig(iterations=500, seed=1))),
            drift=PopularityDrift(drift=0.15, target_utilization=0.75, seed=100),
            policy=policy,  # type: ignore[arg-type]
            threshold=threshold,
            exchange_budget=1,
        )
        reports = sim.run(state, 8)
        worst = max(r.peak_after for r in reports)
        mean = sum(r.peak_after for r in reports) / len(reports)
        rows.append(
            {
                "policy": policy,
                "episodes": sum(r.rebalanced for r in reports),
                "mean_peak": mean,
                "worst_peak": worst,
                "total_moves": sum(r.moves for r in reports),
                "bytes_moved": reports[-1].cumulative_bytes,
            }
        )
    print_table(rows, title="eight epochs of drift under three policies")
    thr = next(r for r in rows if r["policy"] == "threshold")
    alw = next(r for r in rows if r["policy"] == "always")
    if thr["bytes_moved"] < alw["bytes_moved"]:
        print(
            "\nthreshold bought most of 'always''s balance for "
            f"{100 * thr['bytes_moved'] / alw['bytes_moved']:.0f}% of the "
            "migration traffic — the operational sweet spot."
        )


if __name__ == "__main__":
    main()
