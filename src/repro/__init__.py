"""Reproduction of "Improving Load Balance via Resource Exchange in
Large-Scale Search Engines" (Duan, Li, Marbach, Wang, Liu — ICPP 2020).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.cluster`    — machines, shards, placement state, exchange
* :mod:`repro.workloads`  — synthetic and datacenter instance generators
* :mod:`repro.model`      — the IP formulation and exact MILP solver
* :mod:`repro.migration`  — transient-safe migration planning
* :mod:`repro.algorithms` — SRA (ALNS) and baseline rebalancers
* :mod:`repro.engine`     — inverted-index search engine substrate
* :mod:`repro.simulate`   — query-serving discrete-event simulation
* :mod:`repro.metrics`    — balance and migration metrics
* :mod:`repro.obs`        — episode observability (tracing + metrics)
* :mod:`repro.core`       — the one-call public facade
"""

from repro import obs
from repro.algorithms import (
    GreedyRebalancer,
    LocalSearchRebalancer,
    NoopRebalancer,
    RandomRestartRebalancer,
    RebalanceResult,
    SRA,
    SRAConfig,
)
from repro.cluster import ClusterState, ExchangeLedger, Machine, Shard
from repro.core import RebalanceReport, ResourceExchangeRebalancer

__version__ = "1.0.0"

__all__ = [
    "ClusterState",
    "Machine",
    "Shard",
    "ExchangeLedger",
    "SRA",
    "SRAConfig",
    "RebalanceResult",
    "NoopRebalancer",
    "GreedyRebalancer",
    "LocalSearchRebalancer",
    "RandomRestartRebalancer",
    "ResourceExchangeRebalancer",
    "RebalanceReport",
    "obs",
    "__version__",
]
