"""E3 — SRA vs the state-of-the-art baseline (paper analogue: the main
comparison figure).

On every synthetic instance, each algorithm proposes a rebalancing under
the same rules it could actually execute:

* ``noop`` / ``greedy`` / ``local-search`` operate without exchange
  machines (they have no mechanism to exploit or repay them);
* ``sra-b0`` is SRA without exchange machines (LNS contribution alone);
* ``sra-b2`` borrows 2 machines and returns 2 (the full method).

The paper's claim to verify: SRA < local-search < greedy < noop in final
peak utilization, with the SRA gap widening as tightness rises.
"""

from __future__ import annotations

from repro.algorithms import GreedyRebalancer, LocalSearchRebalancer, NoopRebalancer
from repro.experiments.common import make_sra, run_sra_with_exchange
from repro.experiments.harness import register
from repro.workloads import synthetic_suite


@register("e3")
def run(fast: bool = True) -> list[dict]:
    seeds = (0,) if fast else (0, 1, 2)
    utils = (0.6, 0.75, 0.9) if fast else (0.6, 0.7, 0.8, 0.85, 0.9)
    machines = 20 if fast else 50
    iterations = 800 if fast else 2500
    rows = []
    for name, state in synthetic_suite(
        utilizations=utils, seeds=seeds, num_machines=machines
    ):
        entries = {
            "noop": NoopRebalancer().rebalance(state),
            "greedy": GreedyRebalancer().rebalance(state),
            "local-search": LocalSearchRebalancer(seed=1).rebalance(state),
            "sra-b0": make_sra(iterations, seed=1).rebalance(state),
            "sra-b2": run_sra_with_exchange(state, 2, iterations=iterations, seed=1)[0],
        }
        for algo, result in entries.items():
            rows.append(
                {
                    "instance": name,
                    "algorithm": algo,
                    "peak_before": result.peak_before,
                    "peak_after": result.peak_after,
                    "moves": result.num_moves,
                    "feasible": result.feasible,
                    "runtime_s": result.runtime_seconds,
                }
            )
    return rows
