"""E15 — latency through the migration window (extension).

Shape claims: migration derates serving while it runs; the final
placement improves the tail substantially; the move-frugal λ produces
fewer moves and a shorter window than the balance-greedy λ.  The
time-resolved rows add: queries arriving inside the migration window
see a worse p99 than queries outside it, and the per-wave rows tile
the window.
"""

from collections import defaultdict

from repro.experiments import REGISTRY, is_full_run


def test_e15_migration_window(benchmark, save_table):
    rows = benchmark.pedantic(
        REGISTRY["e15"], kwargs={"fast": not is_full_run()}, rounds=1, iterations=1
    )
    save_table("e15", rows, "E15 — serving latency before/during/after migration")

    static = [r for r in rows if r["mode"] == "static"]
    timeline = [r for r in rows if r["mode"] == "timeline"]
    assert len(static) + len(timeline) == len(rows)

    by_variant = defaultdict(dict)
    for r in static:
        by_variant[r["variant"]][r["phase"]] = r
    assert len(by_variant) == 2
    for variant, phases in by_variant.items():
        assert set(phases) == {"before", "during", "after"}
        assert phases["during"]["p99_ms"] >= phases["before"]["p99_ms"] - 1e-6, variant
        assert phases["after"]["p99_ms"] < phases["before"]["p99_ms"], variant
        assert phases["before"]["window_s"] > 0

    greedy = by_variant["balance-greedy λ=0.002"]["before"]
    frugal = by_variant["move-frugal λ=0.30"]["before"]
    assert frugal["moves"] < greedy["moves"]
    assert frugal["window_s"] <= greedy["window_s"] + 1e-9

    tl_by_variant = defaultdict(dict)
    for r in timeline:
        tl_by_variant[r["variant"]][r["phase"]] = r
    assert set(tl_by_variant) == set(by_variant)
    for variant, phases in tl_by_variant.items():
        assert "window" in phases and "outside" in phases, variant
        waves = [p for p in phases if p.startswith("wave")]
        assert waves, variant
        # Pooled window rows aggregate exactly the per-wave queries.
        assert phases["window"]["queries"] == sum(
            phases[w]["queries"] for w in waves
        ), variant
        # The event-resolved claim: the migration window hurts the tail.
        assert phases["window"]["p99_ms"] > phases["outside"]["p99_ms"], variant
