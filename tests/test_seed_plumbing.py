"""Seed-plumbing regression tests (linter rule REP001's runtime twin).

The invariant linter forbids literal/missing RNG seeds statically; these
tests pin the complementary runtime property for each seeded subsystem:
the *configured* seed is the one actually driving the RNG — same seed
reproduces the output bit-for-bit, a different seed changes it.  A
hard-coded seed hiding behind the config (the PR 2 recovery bug:
``default_rng(0)`` shadowing ``sra_config.alns.seed``) fails the
"different seed changes output" half.
"""

import numpy as np

from repro.algorithms import RandomRestartRebalancer, SRAConfig
from repro.engine.text import CorpusConfig, generate_corpus, generate_queries
from repro.online import PopularityDrift
from repro.recovery import RecoveryPlanner, fail_machine
from repro.simulate import ServingConfig, simulate_serving
from repro.simulate.traces import diurnal_rate, nonhomogeneous_arrivals
from repro.simulate.workprofile import WorkProfile
from repro.workloads import SyntheticConfig, generate


def small_state(seed=0):
    return generate(
        SyntheticConfig(
            num_machines=6, shards_per_machine=4, target_utilization=0.6, seed=seed
        )
    )


class TestSyntheticWorkloads:
    def test_same_seed_reproduces(self):
        a, b = small_state(seed=3), small_state(seed=3)
        np.testing.assert_array_equal(a.demand, b.demand)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_different_seed_changes_instance(self):
        a, b = small_state(seed=3), small_state(seed=4)
        assert not np.array_equal(a.demand, b.demand)


class TestTraces:
    def test_seed_drives_arrivals(self):
        rate = diurnal_rate(base_rate=20.0, peak_ratio=3.0)
        a = nonhomogeneous_arrivals(rate, 10.0, seed=1)
        b = nonhomogeneous_arrivals(rate, 10.0, seed=1)
        c = nonhomogeneous_arrivals(rate, 10.0, seed=2)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)


class TestServingSimulation:
    def make_report(self, seed):
        state = small_state()
        profile = WorkProfile(
            np.abs(np.random.default_rng(99).normal(1.0, 0.3, size=(20, state.num_shards)))
        )
        cfg = ServingConfig(arrival_rate=30.0, duration=5.0, seed=seed)
        return simulate_serving(state, profile, config=cfg)

    def test_seed_drives_arrival_stream(self):
        a, b, c = self.make_report(0), self.make_report(0), self.make_report(7)
        assert a.latency.mean == b.latency.mean
        assert a.queries_completed == b.queries_completed
        assert (a.queries_completed, a.latency.mean) != (
            c.queries_completed, c.latency.mean
        )


class TestTextEngine:
    def test_corpus_seed(self):
        cfg_a = CorpusConfig(num_docs=30, vocab_size=50, seed=1)
        cfg_b = CorpusConfig(num_docs=30, vocab_size=50, seed=2)
        assert generate_corpus(cfg_a) == generate_corpus(cfg_a)
        assert generate_corpus(cfg_a) != generate_corpus(cfg_b)

    def test_query_seed_overrides_corpus_default(self):
        cfg = CorpusConfig(num_docs=10, vocab_size=50, seed=1)
        default = generate_queries(cfg, 20)
        explicit_a = generate_queries(cfg, 20, seed=123)
        explicit_b = generate_queries(cfg, 20, seed=123)
        assert explicit_a == explicit_b
        assert explicit_a != default


class TestPopularityDrift:
    def drifted_demand(self, seed):
        drift = PopularityDrift(drift=0.5, seed=seed)
        return drift.step(small_state()).demand

    def test_seed_drives_drift(self):
        np.testing.assert_array_equal(
            self.drifted_demand(5), self.drifted_demand(5)
        )
        assert not np.array_equal(self.drifted_demand(5), self.drifted_demand(6))


class TestRandomRestartBaseline:
    def test_seed_drives_restarts(self):
        state = small_state()
        a = RandomRestartRebalancer(restarts=4, seed=1).rebalance(state)
        b = RandomRestartRebalancer(restarts=4, seed=1).rebalance(state)
        np.testing.assert_array_equal(a.target_assignment, b.target_assignment)
        # A different seed explores different constructions; with only 4
        # restarts on a skewed instance the surviving proposal differs.
        seeds = [
            RandomRestartRebalancer(restarts=1, seed=s).rebalance(state)
            for s in range(6)
        ]
        assignments = {tuple(r.target_assignment.tolist()) for r in seeds}
        assert len(assignments) > 1

    def test_input_state_not_mutated(self):
        state = small_state()
        before = state.assignment
        RandomRestartRebalancer(restarts=2, seed=0).rebalance(state)
        np.testing.assert_array_equal(state.assignment, before)


class TestRecoverySeed:
    def test_configured_seed_reproduces_plan(self):
        state = small_state(seed=2)
        hottest = int(np.argmax(state.machine_peak_utilization()))
        degraded, orphans = fail_machine(state, hottest)
        cfg = SRAConfig()
        a = RecoveryPlanner(sra_config=cfg).recover(degraded.copy(), orphans)
        b = RecoveryPlanner(sra_config=cfg).recover(degraded.copy(), orphans)
        assert a.feasible and b.feasible
        np.testing.assert_array_equal(a.assignment, b.assignment)
        assert a.rebuild_bytes == b.rebuild_bytes
