"""E20 — portfolio effect at equal budget (extension).

Shape claims: all configurations feasible; the best-of-K portfolio never
loses meaningfully to the single long run at equal total iterations (and
usually wins on at least one instance).
"""

from collections import defaultdict

from repro.experiments import REGISTRY, is_full_run


def test_e20_portfolio(benchmark, save_table):
    rows = benchmark.pedantic(
        REGISTRY["e20"], kwargs={"fast": not is_full_run()}, rounds=1, iterations=1
    )
    save_table("e20", rows, "E20 — best-of-K portfolio vs one long run")

    by_instance = defaultdict(dict)
    for r in rows:
        by_instance[r["instance"]][r["portfolio_K"]] = r
    wins = 0
    for instance, ks in by_instance.items():
        assert set(ks) == {1, 2, 4}
        for r in ks.values():
            assert r["feasible"], instance
        best_portfolio = min(ks[2]["peak_after"], ks[4]["peak_after"])
        assert best_portfolio <= ks[1]["peak_after"] + 0.01, instance
        if best_portfolio < ks[1]["peak_after"] - 1e-6:
            wins += 1
    assert wins >= 1, "the portfolio never beat the single run anywhere"
