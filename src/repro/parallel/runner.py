"""Process-parallel task runner with crash isolation and obs merge.

:class:`ParallelRunner` executes a list of :class:`TaskSpec` on up to
``n_workers`` worker processes and returns one :class:`TaskResult` per
task **in task order**, regardless of completion order.  Three
properties distinguish it from a bare ``ProcessPoolExecutor``:

* **crash isolation** — a worker that dies (segfault, ``os._exit``,
  OOM-kill) yields a recorded failure row for its task; the run
  continues and every other task still completes;
* **per-task timeouts** — a task exceeding ``timeout_s`` is terminated
  and recorded as timed out instead of hanging the run;
* **observability merge** — when the parent has an active ``repro.obs``
  bundle, each task runs under a fresh tracer + registry and ships
  its records back; the parent re-parents every task trace under a
  ``parallel.task`` span and folds task metrics into its registry, in
  task order, so merged artifacts are deterministic.

Two pool disciplines are available:

* the default **one-shot** mode forks one process per task (bounded
  concurrency) — simple, maximally isolated, but the per-task process
  cost is paid ``len(tasks)`` times;
* **persistent** mode (``persistent=True``) spawns ``n_workers``
  long-lived workers once and feeds tasks through per-worker duplex
  pipes.  An optional ``initializer(*initargs)`` runs once per worker
  at spawn — this is how ``run_sra_restarts`` attaches workers to the
  shared-memory instance (see :mod:`repro.parallel.shm`) so tasks stop
  re-pickling ``ClusterState``.  Crash isolation and timeouts are
  preserved: a dead or overrunning worker is detected via pipe
  EOF / wall clock, its task recorded as failed/timed out, and a
  replacement spawned while tasks remain.  Close the runner (it is a
  context manager) to shut the workers down.

``n_workers=1`` is the serial path: tasks run in-process (no
``multiprocessing`` at all) under the ambient obs bundle, which is
bitwise-identical to what the same tasks produce on a pool — the
determinism contract tested by ``tests/test_parallel.py``.  The serial
path records the same failure rows as workers do: *any*
``BaseException`` raised by a task (including ``SystemExit`` and
``KeyboardInterrupt``) becomes a failed :class:`TaskResult` rather
than aborting the run, matching the pool's exception contract.

Task functions must be module-level callables and their arguments and
results picklable (everything in this library is: states carry plain
NumPy arrays and frozen dataclasses).
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait
from types import TracebackType
from typing import Any, Callable, Mapping, Sequence

from repro import obs
from repro._validation import check_positive

__all__ = ["TaskSpec", "TaskResult", "ParallelRunner"]


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work: a picklable callable plus its arguments."""

    fn: Callable[..., Any]
    args: tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    #: Label used in failure rows, spans and progress lines.
    name: str = ""
    #: The task's spawned seed, recorded on the result for provenance
    #: (the runner does not interpret it; see ``repro.parallel.seeds``).
    seed: int | None = None


@dataclass
class TaskResult:
    """Outcome of one task, failure rows included."""

    index: int
    name: str
    ok: bool
    value: Any = None
    error: str | None = None
    duration_s: float = 0.0
    seed: int | None = None
    timed_out: bool = False


@dataclass
class _Slot:
    """Parent-side bookkeeping for one finished task (pre-merge)."""

    ok: bool
    value: Any = None
    error: str | None = None
    duration_s: float = 0.0
    timed_out: bool = False
    trace: list[dict[str, Any]] = field(default_factory=list)
    metrics: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class _Running:
    """Parent-side bookkeeping for one in-flight task."""

    index: int
    spec: TaskSpec
    process: Any
    started: float


@dataclass
class _Worker:
    """Parent-side bookkeeping for one persistent worker process."""

    process: Any
    conn: Any
    current: _Running | None = None


def _format_error(exc: BaseException) -> str:
    return "".join(traceback.format_exception_only(exc)).strip()


def _execute_task(spec: TaskSpec, capture_obs: bool) -> dict[str, Any]:
    """Run one task under a fresh obs bundle; return its payload dict.

    The payload is a plain dict so the parent can interpret it even when
    the task's exception types are not importable there.  The previous
    ambient bundle is restored afterwards, so persistent workers do not
    leak one task's tracer into the next.
    """
    bundle = (
        obs.Obs(obs.Tracer(), obs.MetricsRegistry()) if capture_obs else obs.NULL_OBS
    )
    previous = obs.activate(bundle)
    started = time.perf_counter()
    try:
        value = spec.fn(*spec.args, **dict(spec.kwargs))
        payload: dict[str, Any] = {"ok": True, "value": value, "error": None}
    except BaseException as exc:  # noqa: BLE001 - isolation is the point
        payload = {"ok": False, "value": None, "error": _format_error(exc)}
    finally:
        obs.deactivate(previous)
    payload["duration_s"] = time.perf_counter() - started
    if capture_obs:
        payload["trace"] = bundle.tracer.records()
        payload["metrics"] = bundle.metrics.to_dict()
    return payload


def _send_payload(conn: Any, payload: dict[str, Any], index: int | None = None) -> None:
    """Ship *payload* to the parent; degrade unpicklable results to a
    failure row instead of vanishing."""

    def wrap(p: dict[str, Any]) -> Any:
        return p if index is None else (index, p)

    try:
        conn.send(wrap(payload))
    except Exception as exc:  # unpicklable result: report, don't vanish
        conn.send(
            wrap(
                {
                    "ok": False,
                    "value": None,
                    "error": f"task result not picklable: {_format_error(exc)}",
                    "duration_s": payload.get("duration_s", 0.0),
                }
            )
        )


def _worker_entry(spec: TaskSpec, capture_obs: bool, conn: Any) -> None:
    """One-shot worker process body: run the task, ship the payload."""
    _send_payload(conn, _execute_task(spec, capture_obs))
    conn.close()


def _persistent_worker_main(
    conn: Any,
    initializer: Callable[..., None] | None,
    initargs: tuple[Any, ...],
) -> None:
    """Persistent worker loop: init once, then serve tasks until EOF.

    Each message is ``(index, spec, capture_obs)``; ``None`` (or pipe
    EOF) shuts the worker down.  An initializer failure kills the worker
    — the parent observes EOF, records the assigned task as crashed and
    respawns, so a broken initializer fails tasks rather than hanging
    the run.
    """
    if initializer is not None:
        initializer(*initargs)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        index, spec, capture_obs = msg
        _send_payload(conn, _execute_task(spec, capture_obs), index=index)
    conn.close()


class ParallelRunner:
    """Bounded-concurrency process runner (see module docstring).

    Parameters
    ----------
    n_workers:
        Maximum concurrent worker processes.  ``1`` (the default) runs
        every task serially in-process — exactly today's single-core
        path, with no multiprocessing machinery involved.
    timeout_s:
        Optional per-task wall-clock limit.  Only enforced on the pool
        paths (``n_workers > 1``); the serial path cannot preempt a
        running task.
    start_method:
        ``multiprocessing`` start method (None = platform default,
        ``fork`` on Linux).  Tasks must tolerate ``spawn`` to be
        portable.
    persistent:
        When True, spawn ``n_workers`` long-lived workers on first use
        and feed them tasks over pipes instead of forking one process
        per task.  Call :meth:`close` (or use the runner as a context
        manager) when done.
    initializer / initargs:
        Optional per-worker setup hook for persistent mode, run once in
        each worker process at spawn (and once in-process for the
        serial path).  Arguments travel through ``Process`` creation,
        so ``multiprocessing`` primitives (locks) are allowed here even
        though they cannot cross task pipes.
    """

    def __init__(
        self,
        n_workers: int = 1,
        *,
        timeout_s: float | None = None,
        start_method: str | None = None,
        persistent: bool = False,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
    ) -> None:
        check_positive("n_workers", n_workers)
        if timeout_s is not None:
            check_positive("timeout_s", timeout_s)
        self.n_workers = int(n_workers)
        self.timeout_s = timeout_s
        self.persistent = bool(persistent)
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._inline_initialized = False
        self._workers: list[_Worker] = []
        self._ctx = mp.get_context(start_method)

    # ------------------------------------------------------------------ API
    def run(self, tasks: Sequence[TaskSpec]) -> list[TaskResult]:
        """Execute *tasks*; return one result per task, in task order."""
        specs = list(tasks)
        if not specs:
            return []
        if self.n_workers == 1:
            if self._initializer is not None and not self._inline_initialized:
                self._initializer(*self._initargs)
                self._inline_initialized = True
            return [self._run_inline(i, spec) for i, spec in enumerate(specs)]
        slots = self._run_persistent(specs) if self.persistent else self._run_pool(specs)
        return self._merge(specs, slots)

    def close(self) -> None:
        """Shut down persistent workers (idempotent; no-op otherwise)."""
        workers, self._workers = self._workers, []
        for worker in workers:
            if worker.process.is_alive():
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for worker in workers:
            worker.process.join(1.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
            worker.conn.close()

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    # --------------------------------------------------------- serial path
    def _run_inline(self, index: int, spec: TaskSpec) -> TaskResult:
        tracer = obs.current().tracer
        started = time.perf_counter()
        with tracer.span(
            "parallel.task", index=index, task=spec.name, seed=spec.seed
        ) as span:
            try:
                value = spec.fn(*spec.args, **dict(spec.kwargs))
                ok, error = True, None
            except BaseException as exc:  # noqa: BLE001 - same contract as pool
                # A worker records SystemExit/KeyboardInterrupt as a
                # failure row; the serial path must do the same, or a
                # task's behaviour would depend on n_workers.
                value, ok, error = None, False, _format_error(exc)
            duration = time.perf_counter() - started
            span.set("ok", ok)
            span.set("duration_s", duration)
        return TaskResult(
            index=index,
            name=spec.name,
            ok=ok,
            value=value,
            error=error,
            duration_s=duration,
            seed=spec.seed,
        )

    # ------------------------------------------------- one-shot pool path
    def _run_pool(self, specs: list[TaskSpec]) -> list[_Slot]:
        capture = obs.current().enabled
        slots: list[_Slot | None] = [None] * len(specs)
        pending: deque[tuple[int, TaskSpec]] = deque(enumerate(specs))
        running: dict[Any, _Running] = {}
        try:
            while pending or running:
                while pending and len(running) < self.n_workers:
                    index, spec = pending.popleft()
                    recv, send = self._ctx.Pipe(duplex=False)
                    process = self._ctx.Process(
                        target=_worker_entry, args=(spec, capture, send)
                    )
                    process.start()
                    send.close()  # parent's copy; EOF now tracks the worker
                    running[recv] = _Running(index, spec, process, time.perf_counter())
                tick = 0.05 if self.timeout_s is not None else None
                ready = wait(list(running.keys()), timeout=tick)
                for conn in ready:
                    run = running.pop(conn)
                    slots[run.index] = self._collect(run, conn)
                if self.timeout_s is not None:
                    now = time.perf_counter()
                    for conn, run in list(running.items()):
                        if now - run.started >= self.timeout_s:
                            running.pop(conn)
                            self._kill(run.process)
                            conn.close()
                            slots[run.index] = _Slot(
                                ok=False,
                                error=f"timed out after {self.timeout_s:g}s",
                                duration_s=now - run.started,
                                timed_out=True,
                            )
        finally:
            for conn, run in running.items():
                self._kill(run.process)
                conn.close()
        return [slot if slot is not None else _Slot(ok=False, error="not run")
                for slot in slots]

    def _collect(self, run: _Running, conn: Any) -> _Slot:
        """Read one finished worker's payload (or record its crash)."""
        payload: Mapping[str, Any] | None
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            payload = None
        conn.close()
        run.process.join()
        if payload is None:
            code = run.process.exitcode
            return _Slot(
                ok=False,
                error=f"worker crashed before reporting (exitcode {code})",
                duration_s=time.perf_counter() - run.started,
            )
        return self._slot_from_payload(payload)

    @staticmethod
    def _slot_from_payload(payload: Mapping[str, Any]) -> _Slot:
        return _Slot(
            ok=bool(payload["ok"]),
            value=payload.get("value"),
            error=payload.get("error"),
            duration_s=float(payload.get("duration_s", 0.0)),
            trace=list(payload.get("trace", [])),
            metrics=payload.get("metrics", {}),
        )

    @staticmethod
    def _kill(process: Any) -> None:
        process.terminate()
        process.join(1.0)
        if process.is_alive():
            process.kill()
            process.join()

    # ----------------------------------------------- persistent pool path
    def _spawn_worker(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_persistent_worker_main,
            args=(child_conn, self._initializer, self._initargs),
        )
        process.start()
        child_conn.close()
        worker = _Worker(process=process, conn=parent_conn)
        self._workers.append(worker)
        return worker

    def _drop(self, worker: _Worker) -> None:
        """Remove a dead/overrunning worker from the pool."""
        if worker in self._workers:
            self._workers.remove(worker)
        self._kill(worker.process)
        worker.conn.close()

    def _run_persistent(self, specs: list[TaskSpec]) -> list[_Slot]:
        """Feed *specs* to the long-lived worker pool.

        Every spawned worker handles at least one task outcome (success,
        crash row, or timeout row) before being replaced, so the run
        terminates even when workers die on arrival (for example when
        the initializer itself raises).
        """
        capture = obs.current().enabled
        slots: list[_Slot | None] = [None] * len(specs)
        pending: deque[tuple[int, TaskSpec]] = deque(enumerate(specs))
        while pending or any(w.current is not None for w in self._workers):
            while pending and len(self._workers) < self.n_workers:
                self._spawn_worker()
            for worker in list(self._workers):
                if not pending:
                    break
                if worker.current is not None:
                    continue
                index, spec = pending.popleft()
                try:
                    worker.conn.send((index, spec, capture))
                except (BrokenPipeError, OSError):
                    # The worker died while idle; its replacement (if
                    # tasks remain) is spawned on the next loop pass.
                    slots[index] = _Slot(
                        ok=False,
                        error="worker crashed before reporting "
                        f"(exitcode {worker.process.exitcode})",
                    )
                    self._drop(worker)
                    continue
                worker.current = _Running(index, spec, worker.process, time.perf_counter())
            busy = {w.conn: w for w in self._workers if w.current is not None}
            if not busy:
                continue
            tick = 0.05 if self.timeout_s is not None else None
            ready = wait(list(busy.keys()), timeout=tick)
            for conn in ready:
                worker = busy[conn]
                run = worker.current
                assert run is not None
                try:
                    index, payload = conn.recv()
                except (EOFError, OSError):
                    slots[run.index] = _Slot(
                        ok=False,
                        error="worker crashed before reporting "
                        f"(exitcode {worker.process.exitcode})",
                        duration_s=time.perf_counter() - run.started,
                    )
                    self._drop(worker)
                    continue
                slots[index] = self._slot_from_payload(payload)
                worker.current = None
            if self.timeout_s is not None:
                now = time.perf_counter()
                for worker in list(self._workers):
                    run = worker.current
                    if run is not None and now - run.started >= self.timeout_s:
                        slots[run.index] = _Slot(
                            ok=False,
                            error=f"timed out after {self.timeout_s:g}s",
                            duration_s=now - run.started,
                            timed_out=True,
                        )
                        self._drop(worker)
        return [slot if slot is not None else _Slot(ok=False, error="not run")
                for slot in slots]

    # ---------------------------------------------------------------- merge
    def _merge(self, specs: list[TaskSpec], slots: list[_Slot]) -> list[TaskResult]:
        """Fold worker obs payloads into the parent bundle, in task order."""
        bundle = obs.current()
        results: list[TaskResult] = []
        for index, (spec, slot) in enumerate(zip(specs, slots, strict=True)):
            with bundle.tracer.span(
                "parallel.task", index=index, task=spec.name, seed=spec.seed
            ) as span:
                span.set("ok", slot.ok)
                span.set("duration_s", slot.duration_s)
                if slot.timed_out:
                    span.set("timed_out", True)
                if slot.trace:
                    bundle.tracer.ingest(slot.trace)
            if slot.metrics:
                bundle.metrics.merge_dict(slot.metrics)
            results.append(
                TaskResult(
                    index=index,
                    name=spec.name,
                    ok=slot.ok,
                    value=slot.value,
                    error=slot.error,
                    duration_s=slot.duration_s,
                    seed=spec.seed,
                    timed_out=slot.timed_out,
                )
            )
        return results
