"""Named instance suites used by the experiment harness.

Each suite is a list of ``(name, ClusterState)`` pairs built by looking
up a :class:`~repro.scenarios.ScenarioSpec` in the scenario registry
(``repro.scenarios``), so every benchmark run sees byte-identical
instances and every suite member has a canonical, content-addressed
spec.  The suites mirror the two data sources of the paper's
evaluation: synthetic data (uniform and Zipf) and datacenter snapshots
(our substitution for the production data, see DESIGN.md §3).

The spec mapping is exact: each suite passes the same parameters the
old hand-built ``SyntheticConfig`` / ``DatacenterConfig`` wiring did
(with ``seed=spec.seed`` fed straight through), so instances are
byte-identical to those of earlier releases and the numbers recorded in
EXPERIMENTS.md remain valid.  ``suite_specs`` exposes the spec lists
themselves for tooling that wants the canonical form (hashes, matrix
axes) rather than materialized instances.

Imports of ``repro.scenarios`` are deferred into the function bodies:
the scenario families import the workload generators at module scope,
so a top-level import here would be circular.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.cluster import ClusterState

if TYPE_CHECKING:  # pragma: no cover - import cycle at runtime only
    from repro.scenarios import ScenarioSpec

__all__ = [
    "small_suite",
    "synthetic_suite",
    "tight_suite",
    "datacenter_suite",
    "scaling_suite",
    "suite_specs",
]


def _materialize(
    named_specs: list[tuple[str, "ScenarioSpec"]],
) -> list[tuple[str, ClusterState]]:
    from repro.scenarios import generate_instance

    return [(name, generate_instance(spec)) for name, spec in named_specs]


def _small_specs(seeds: Iterable[int]) -> list[tuple[str, "ScenarioSpec"]]:
    from repro.scenarios import ScenarioSpec

    out: list[tuple[str, "ScenarioSpec"]] = []
    for seed in seeds:
        for m, spm in ((4, 4), (6, 4), (8, 3)):
            spec = ScenarioSpec(
                "zipf-popularity",
                {
                    "num_machines": m,
                    "shards_per_machine": spm,
                    "target_utilization": 0.7,
                    "placement_skew": 0.5,
                },
                seed=seed,
            )
            out.append((f"small-m{m}n{m * spm}-s{seed}", spec))
    return out


def small_suite(seeds: Iterable[int] = (0, 1, 2)) -> list[tuple[str, ClusterState]]:
    """Tiny instances solvable exactly by the MILP backend (E9)."""
    return _materialize(_small_specs(seeds))


def _synthetic_specs(
    utilizations: Iterable[float],
    seeds: Iterable[int],
    *,
    num_machines: int,
    shards_per_machine: int,
) -> list[tuple[str, "ScenarioSpec"]]:
    from repro.scenarios import ScenarioSpec

    out: list[tuple[str, "ScenarioSpec"]] = []
    for dist in ("uniform", "zipf"):
        for util in utilizations:
            for seed in seeds:
                shape = {
                    "num_machines": num_machines,
                    "shards_per_machine": shards_per_machine,
                    "target_utilization": util,
                    "placement_skew": 0.55,
                    "max_shard_fraction": 0.35,
                }
                # Uniform rows map onto the correlated-demand family
                # (which parameterizes the distribution), zipf rows onto
                # the canonical zipf-popularity family; both resolve to
                # the same SyntheticConfig the suite always used.
                if dist == "uniform":
                    spec = ScenarioSpec(
                        "correlated-demand",
                        {**shape, "demand_dist": "uniform"},
                        seed=seed,
                    )
                else:
                    spec = ScenarioSpec("zipf-popularity", shape, seed=seed)
                out.append((f"{dist}-u{util:.2f}-s{seed}", spec))
    return out


def synthetic_suite(
    utilizations: Iterable[float] = (0.6, 0.75, 0.9),
    seeds: Iterable[int] = (0, 1, 2),
    *,
    num_machines: int = 50,
    shards_per_machine: int = 6,
) -> list[tuple[str, ClusterState]]:
    """The main synthetic comparison suite (E1, E3).

    ``shards_per_machine=6`` and ``max_shard_fraction=0.35`` follow
    production search-shard sizing (tens of GB per shard, a handful per
    machine); big shards are what make the transient constraint bind and
    separate the algorithms — see DESIGN.md §3.
    """
    return _materialize(
        _synthetic_specs(
            utilizations,
            seeds,
            num_machines=num_machines,
            shards_per_machine=shards_per_machine,
        )
    )


def _tight_specs(seeds: Iterable[int]) -> list[tuple[str, "ScenarioSpec"]]:
    from repro.scenarios import ScenarioSpec

    return [
        (
            f"tight-u0.88-s{seed}",
            ScenarioSpec(
                "zipf-popularity",
                {
                    "num_machines": 40,
                    "shards_per_machine": 6,
                    "target_utilization": 0.88,
                    "placement_skew": 0.5,
                    "max_shard_fraction": 0.35,
                },
                seed=seed,
            ),
        )
        for seed in seeds
    ]


def tight_suite(seeds: Iterable[int] = (0, 1, 2)) -> list[tuple[str, ClusterState]]:
    """Stringent-resource instances where transient constraints bind (E2, E7)."""
    return _materialize(_tight_specs(seeds))


def _datacenter_specs(seeds: Iterable[int]) -> list[tuple[str, "ScenarioSpec"]]:
    from repro.scenarios import ScenarioSpec

    out: list[tuple[str, "ScenarioSpec"]] = []
    for seed in seeds:
        for m, drift in ((80, 0.3), (120, 0.4)):
            spec = ScenarioSpec(
                "heterogeneous-generations",
                {
                    "num_machines": m,
                    "shards_per_machine": 12,
                    "target_utilization": 0.8,
                    "drift": drift,
                },
                seed=seed,
            )
            out.append((f"dc-m{m}-d{drift:.1f}-s{seed}", spec))
    return out


def datacenter_suite(seeds: Iterable[int] = (0, 1, 2)) -> list[tuple[str, ClusterState]]:
    """Drifted datacenter snapshots — the "real data" stand-in (E5)."""
    return _materialize(_datacenter_specs(seeds))


def _scaling_specs(
    sizes: Iterable[tuple[int, int]], seed: int
) -> list[tuple[str, "ScenarioSpec"]]:
    from repro.scenarios import ScenarioSpec

    return [
        (
            f"scale-m{m}-n{m * spm}",
            ScenarioSpec(
                "zipf-popularity",
                {
                    "num_machines": m,
                    "shards_per_machine": spm,
                    "target_utilization": 0.8,
                    "placement_skew": 0.5,
                },
                seed=seed,
            ),
        )
        for m, spm in sizes
    ]


def scaling_suite(
    sizes: Iterable[tuple[int, int]] = ((20, 10), (50, 10), (100, 10), (200, 10), (400, 10)),
    seed: int = 0,
) -> list[tuple[str, ClusterState]]:
    """Increasing-size instances for the runtime scaling study (E6)."""
    return _materialize(_scaling_specs(sizes, seed))


def suite_specs(suite: str) -> list[tuple[str, "ScenarioSpec"]]:
    """The canonical specs behind a named suite (default arguments).

    Useful when tooling needs the content-addressed form — spec hashes,
    matrix axes, EXPERIMENTS.md provenance — without materializing the
    instances.  Raises :class:`ValueError` for unknown suite names.
    """
    builders = {
        "small": lambda: _small_specs((0, 1, 2)),
        "synthetic": lambda: _synthetic_specs(
            (0.6, 0.75, 0.9), (0, 1, 2), num_machines=50, shards_per_machine=6
        ),
        "tight": lambda: _tight_specs((0, 1, 2)),
        "datacenter": lambda: _datacenter_specs((0, 1, 2)),
        "scaling": lambda: _scaling_specs(
            ((20, 10), (50, 10), (100, 10), (200, 10), (400, 10)), 0
        ),
    }
    if suite not in builders:
        raise ValueError(f"unknown suite {suite!r}; available: {sorted(builders)}")
    return builders[suite]()
