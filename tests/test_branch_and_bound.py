"""Tests for the pure-Python branch-and-bound solver.

The decisive check: on every instance both exact backends (HiGHS MILP
and this B&B) report the same optimal objective — two independent
implementations agreeing on the model's meaning.
"""

import numpy as np
import pytest

from repro.cluster import ClusterState, Machine, Shard
from repro.model import BranchAndBoundSolver, MilpSolver, ModelConfig
from repro.workloads import SyntheticConfig, generate


def solve_both(state, config):
    bb = BranchAndBoundSolver(config, time_limit=60.0).solve(state)
    hg = MilpSolver(config).solve(state)
    return bb, hg


class TestBranchAndBound:
    def test_balances_two_machines(self):
        machines = Machine.homogeneous(2, 10.0)
        shards = Shard.uniform(4, 1.0)
        state = ClusterState(machines, shards, [0, 0, 0, 0])
        result = BranchAndBoundSolver(ModelConfig(move_penalty=0.0)).solve(state)
        assert result.status == "optimal"
        assert result.peak_utilization == pytest.approx(0.2, abs=1e-6)

    def test_agrees_with_highs_on_tiny_instances(self):
        for seed in (0, 1):
            state = generate(
                SyntheticConfig(
                    num_machines=3,
                    shards_per_machine=2,
                    seed=seed,
                    target_utilization=0.6,
                )
            )
            cfg = ModelConfig(move_penalty=0.001)
            bb, hg = solve_both(state, cfg)
            assert bb.status == "optimal" and hg.status == "optimal"
            assert bb.objective == pytest.approx(hg.objective, abs=1e-6)

    def test_vacancy_constraint(self):
        machines = Machine.homogeneous(3, 10.0)
        shards = Shard.uniform(4, 1.0)
        state = ClusterState(machines, shards, [0, 1, 2, 0])
        cfg = ModelConfig(required_returns=1, move_penalty=0.0)
        bb, hg = solve_both(state, cfg)
        assert bb.status == "optimal"
        assert bb.peak_utilization == pytest.approx(hg.peak_utilization, abs=1e-6)
        assert len(bb.vacant_machines) >= 1

    def test_infeasible_detected(self):
        machines = Machine.homogeneous(2, 10.0)
        shards = Shard.uniform(4, 4.0)
        state = ClusterState(machines, shards, [0, 0, 1, 1])
        result = BranchAndBoundSolver(
            ModelConfig(required_returns=1, move_penalty=0.0)
        ).solve(state)
        assert result.status == "infeasible"
        assert not result.ok

    def test_anti_affinity_respected(self):
        machines = Machine.homogeneous(2, 10.0)
        shards = [
            Shard(id=0, demand=np.full(3, 4.0), replica_of=0),
            Shard(id=1, demand=np.full(3, 4.0), replica_of=0),
            Shard(id=2, demand=np.full(3, 1.0)),
        ]
        state = ClusterState(machines, shards, [0, 1, 0])
        result = BranchAndBoundSolver(ModelConfig(move_penalty=0.0)).solve(state)
        assert result.ok
        final = state.copy()
        final.apply_assignment(result.assignment)
        assert not final.has_replica_conflicts()

    def test_timeout_reports_honestly(self):
        state = generate(
            SyntheticConfig(num_machines=5, shards_per_machine=4, seed=2)
        )
        result = BranchAndBoundSolver(
            ModelConfig(move_penalty=0.0), time_limit=0.2
        ).solve(state)
        assert result.status in ("timeout", "optimal", "failed")
        if result.status == "timeout":
            assert result.assignment is not None  # incumbent still usable

    def test_validation(self):
        with pytest.raises(ValueError, match="time_limit"):
            BranchAndBoundSolver(time_limit=0.0)
        with pytest.raises(ValueError, match="node_limit"):
            BranchAndBoundSolver(node_limit=0)
