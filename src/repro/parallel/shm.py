"""Shared-memory instance publication and the cooperative incumbent slot.

Two facilities back the persistent restart pool (see
docs/ARCHITECTURE.md, "Parallel execution"):

* **Instance publication** — :func:`publish_state` copies a
  :class:`~repro.cluster.ClusterState`'s structure-of-arrays matrices
  (capacity, demand, sizes, assignment, blocked/offline/exchange masks,
  replica table) into **one** ``multiprocessing.shared_memory`` segment
  and returns a :class:`SharedState` owner plus a small picklable
  :class:`StateHandle`.  Workers call :func:`attach_state` once, at pool
  start, and reconstruct a fully equivalent ``ClusterState`` whose
  immutable matrices are zero-copy views into the segment
  (``ClusterState.attach``); only the per-worker *mutable* arrays
  (assignment, loads, caches) are private.  This replaces re-pickling
  the whole instance — tens of thousands of ``Machine``/``Shard``
  dataclasses — for every restart task.

* **Incumbent exchange** — :class:`IncumbentSlot` is a single shared
  best-solution slot (objective + assignment + blocked mask + version
  counter) guarded by a ``multiprocessing`` lock.  Cooperative restarts
  poll it every ``period`` ALNS iterations through an
  :class:`IncumbentExchange` client: publish the own best when it beats
  the slot, adopt the slot when it beats the own best.  The publisher
  only ever stores filtered incumbents, so adoption is sound without
  re-running the best filter (all restarts share one episode, hence one
  filter).

Ownership / lifetime contract
-----------------------------

The **parent** that called :func:`publish_state` /
``IncumbentSlot(...)`` owns the segments: it must call ``close()`` and
``unlink()`` (both objects are context managers doing exactly that) —
on normal exit *and* on error paths.  Workers are attach-only: they
``close()`` their mapping at process exit and never unlink.  Attaching
explicitly unregisters the segment from the worker's
``resource_tracker`` so Python < 3.13 does not unlink (or warn about)
a segment the worker never owned.  A crashed or timeout-killed worker
therefore cannot leak the segment: the name lives exactly as long as
the parent's ``unlink()`` is pending, which ``run_sra_restarts``
guarantees with ``finally``.  ``ClusterState.detach()`` converts an
attached state to private buffers for the rare case where a state must
outlive its segment.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass
from multiprocessing.shared_memory import SharedMemory
from types import TracebackType
from typing import Any, Mapping, Protocol

import numpy as np

from repro.cluster import ClusterState
from repro.cluster.machine import Machine
from repro.cluster.resources import ResourceSchema
from repro.cluster.shard import Shard

__all__ = [
    "ArraySpec",
    "LockLike",
    "StateHandle",
    "SharedState",
    "AttachedState",
    "publish_state",
    "attach_state",
    "IncumbentHandle",
    "IncumbentSlot",
    "IncumbentExchange",
    "attach_incumbent",
    "local_incumbent_exchange",
]


def _untrack(shm: SharedMemory) -> None:
    """Unregister *shm* from this process's resource tracker.

    On Python < 3.13 ``SharedMemory(name=...)`` registers even pure
    attachments, so a worker exiting would unlink (and warn about) a
    segment the parent still owns.  Attach-side code calls this right
    after opening; the parent keeps sole unlink responsibility.
    """
    try:  # pragma: no cover - tracker layout is an implementation detail
        from multiprocessing import resource_tracker

        resource_tracker.unregister(getattr(shm, "_name", shm.name), "shared_memory")
    except Exception:
        pass


# ---------------------------------------------------------------- instance
@dataclass(frozen=True)
class ArraySpec:
    """Placement of one array inside a shared segment."""

    offset: int
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class StateHandle:
    """Picklable descriptor of a published cluster instance.

    Small by construction: segment name, array layout, the resource
    schema and the per-machine hardware-class labels.  Everything bulky
    lives in the segment itself.
    """

    segment: str
    nbytes: int
    arrays: Mapping[str, ArraySpec]
    schema: ResourceSchema
    machine_cls: tuple[str, ...]


def _layout(arrays: Mapping[str, np.ndarray]) -> tuple[dict[str, ArraySpec], int]:
    """8-byte-aligned packing of *arrays* into one segment."""
    specs: dict[str, ArraySpec] = {}
    offset = 0
    for name, arr in arrays.items():
        offset = (offset + 7) & ~7
        specs[name] = ArraySpec(offset=offset, shape=arr.shape, dtype=arr.dtype.str)
        offset += arr.nbytes
    return specs, max(offset, 1)


def _views(
    specs: Mapping[str, ArraySpec], buf: memoryview
) -> dict[str, np.ndarray]:
    return {
        name: np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=buf, offset=spec.offset
        )
        for name, spec in specs.items()
    }


class SharedState:
    """Owner side of a published instance (see module docstring).

    Context-manager exit closes **and unlinks** the segment — the owner
    is the only party allowed to unlink.
    """

    def __init__(self, handle: StateHandle, shm: SharedMemory) -> None:
        self.handle = handle
        self._shm: SharedMemory | None = shm

    def close(self) -> None:
        """Unmap the owner's view (idempotent)."""
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def unlink(self) -> None:
        """Remove the segment name; safe to call once, after close()."""
        try:
            SharedMemory(name=self.handle.segment).unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedState":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()
        self.unlink()


def publish_state(state: ClusterState) -> SharedState:
    """Copy *state*'s arrays into a fresh shared segment.

    The published image is a snapshot: later mutations of *state* are
    not reflected.  Only the public array surface is read, so any
    ``ClusterState`` (including one produced by ``with_extra_machines``
    after an exchange borrow) can be published.
    """
    arrays: dict[str, np.ndarray] = {
        "capacity": np.ascontiguousarray(state.capacity),
        "demand": np.ascontiguousarray(state.demand),
        "sizes": np.ascontiguousarray(state.sizes),
        "assignment": state.assignment,
        "blocked": np.ascontiguousarray(state.blocked_mask),
        "offline": np.ascontiguousarray(state.offline_mask),
        "exchange": np.ascontiguousarray(state.exchange_mask),
        "replica_of": np.array([sh.replica_of for sh in state.shards], dtype=np.int64),
    }
    specs, nbytes = _layout(arrays)
    shm = SharedMemory(create=True, size=nbytes)
    views = _views(specs, shm.buf)
    for name, arr in arrays.items():
        views[name][...] = arr
    del views  # drop buffer exports so close() cannot raise BufferError
    handle = StateHandle(
        segment=shm.name,
        nbytes=nbytes,
        arrays=specs,
        schema=state.schema,
        machine_cls=tuple(mach.cls for mach in state.machines),
    )
    return SharedState(handle, shm)


class AttachedState:
    """Worker side of a published instance: the reconstructed state plus
    the mapping keeping its buffers alive.

    Hold on to this object for as long as the state (or any copy's
    shared description arrays) is in use; ``close()`` unmaps.  Workers
    normally never close — process exit unmaps, and the parent unlinks.
    """

    def __init__(self, state: ClusterState, shm: SharedMemory) -> None:
        self.state = state
        self._shm = shm

    def close(self) -> None:
        """Unmap.  Only safe once every view into the segment is dead;
        call ``state.detach()`` first if the state must survive."""
        self._shm.close()


def attach_state(handle: StateHandle) -> AttachedState:
    """Reconstruct the published state from *handle* (zero-copy matrices).

    The returned state is fully equivalent to the published one —
    bitwise-identical arrays, equal machine/shard descriptions — so a
    search run on it walks the exact trajectory it would walk on the
    pickled original (pinned by a hypothesis property in
    ``tests/test_parallel_pool.py``).
    """
    shm = SharedMemory(name=handle.segment)
    _untrack(shm)
    views = _views(handle.arrays, shm.buf)
    for name in ("capacity", "demand", "sizes"):
        views[name].flags.writeable = False
    schema = handle.schema
    capacity = views["capacity"]
    exchange = views["exchange"]
    machines = [
        Machine(
            id=i,
            capacity=capacity[i],
            schema=schema,
            cls=handle.machine_cls[i],
            exchange=bool(exchange[i]),
        )
        for i in range(capacity.shape[0])
    ]
    demand = views["demand"]
    sizes = views["sizes"]
    replica_of = views["replica_of"]
    shards = [
        Shard(
            id=j,
            demand=demand[j],
            schema=schema,
            size_bytes=float(sizes[j]),
            replica_of=int(replica_of[j]),
        )
        for j in range(demand.shape[0])
    ]
    state = ClusterState.attach(
        machines,
        shards,
        capacity=capacity,
        demand=demand,
        sizes=sizes,
        assignment=views["assignment"],
        blocked=views["blocked"],
        offline=views["offline"],
    )
    return AttachedState(state, shm)


# --------------------------------------------------------------- incumbent
@dataclass(frozen=True)
class IncumbentHandle:
    """Picklable descriptor of an incumbent slot segment."""

    segment: str
    num_shards: int
    num_machines: int


class _SlotView:
    """Numpy views over an incumbent slot buffer.

    Layout: ``version`` int64 at 0, ``objective`` float64 at 8,
    ``assign`` int64[n] at 16, ``blocked`` bool[m] after it.
    ``version == 0`` means empty.  Keeps a reference to the backing
    mapping (when any) so the buffer outlives the view.
    """

    def __init__(self, buf: Any, n: int, m: int, shm: SharedMemory | None = None) -> None:
        self._shm = shm
        self.version = np.ndarray((1,), dtype=np.int64, buffer=buf, offset=0)
        self.objective = np.ndarray((1,), dtype=np.float64, buffer=buf, offset=8)
        self.assign = np.ndarray((n,), dtype=np.int64, buffer=buf, offset=16)
        self.blocked = np.ndarray((m,), dtype=np.bool_, buffer=buf, offset=16 + 8 * n)

    @staticmethod
    def nbytes(n: int, m: int) -> int:
        return 16 + 8 * n + m


class LockLike(Protocol):
    """Structural protocol shared by ``multiprocessing.Lock`` and
    :class:`_NullLock`: context-manager entry/exit plus explicit
    acquire/release.  Everything in this module that takes a lock is
    typed against this protocol, so the serial no-op path and the real
    multiprocessing path go through the same interface — no
    special-casing in strict mypy or in the REP006 lock-discipline
    check."""

    def acquire(self, block: bool = True, timeout: float | None = None) -> bool: ...

    def release(self) -> None: ...

    def __enter__(self) -> bool: ...

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None: ...


class _NullLock:
    """No-op :class:`LockLike` for single-process (serial cooperative)
    exchange: a second holder is impossible, so acquisition always
    succeeds immediately."""

    def acquire(self, block: bool = True, timeout: float | None = None) -> bool:
        return True

    def release(self) -> None:
        return None

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.release()


class IncumbentSlot:
    """Owner side of the shared best-solution slot.

    Create in the parent, pass ``handle`` + ``lock`` to workers at
    spawn time (locks cannot travel over task pipes), unlink in the
    parent when the fan-out is done.
    """

    def __init__(
        self,
        num_shards: int,
        num_machines: int,
        *,
        ctx: Any = None,
    ) -> None:
        self._shm = SharedMemory(
            create=True, size=_SlotView.nbytes(num_shards, num_machines)
        )
        self._shm.buf[: _SlotView.nbytes(num_shards, num_machines)] = bytes(
            _SlotView.nbytes(num_shards, num_machines)
        )
        self.lock: LockLike = (ctx or mp.get_context()).Lock()
        self.handle = IncumbentHandle(
            segment=self._shm.name,
            num_shards=num_shards,
            num_machines=num_machines,
        )

    def snapshot(self) -> tuple[int, float, np.ndarray, np.ndarray] | None:
        """(version, objective, assignment, blocked) or None while empty.

        Copies out under the lock; safe to call while workers run.
        """
        view = _SlotView(self._shm.buf, self.handle.num_shards, self.handle.num_machines)
        with self.lock:
            version = int(view.version[0])
            if version == 0:
                return None
            return (
                version,
                float(view.objective[0]),
                view.assign.copy(),
                view.blocked.copy(),
            )

    def close(self) -> None:
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a live snapshot view
            pass

    def unlink(self) -> None:
        try:
            SharedMemory(name=self.handle.segment).unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "IncumbentSlot":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()
        self.unlink()


class IncumbentExchange:
    """Publish/adopt client over an incumbent slot (see module docstring).

    The ALNS engine polls this every :attr:`period` iterations:
    :meth:`offer` stores the caller's best when it strictly beats the
    slot; :meth:`take` returns a copy of the slot's incumbent when it
    strictly beats the caller's best (and is not the caller's own last
    publication).  Objectives compare with a 1e-12 margin so float noise
    cannot ping-pong an incumbent between workers.
    """

    def __init__(self, view: _SlotView, lock: LockLike, period: int = 50) -> None:
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self._view = view
        self._lock: LockLike = lock
        self.period = int(period)
        self._seen_version = 0

    def clone(self) -> "IncumbentExchange":
        """Fresh client over the same slot.

        The seen-version cursor is per *search*: a new restart must be
        able to adopt the slot's current incumbent even though the
        previous restart in this process already saw (or wrote) that
        version.  Give every search its own clone.
        """
        return IncumbentExchange(self._view, self._lock, self.period)

    def offer(
        self, objective: float, assignment: np.ndarray, blocked: np.ndarray
    ) -> bool:
        """Store (objective, assignment, blocked) if strictly better."""
        view = self._view
        with self._lock:
            version = int(view.version[0])
            if version != 0 and not (objective < float(view.objective[0]) - 1e-12):
                return False
            view.objective[0] = objective
            view.assign[...] = assignment
            view.blocked[...] = blocked
            self._seen_version = version + 1
            view.version[0] = version + 1
            return True

    def take(self, objective: float) -> tuple[float, np.ndarray, np.ndarray] | None:
        """Copy out a strictly better foreign incumbent, or None.

        The lock-free version pre-check makes the steady state (nothing
        new) one int64 read; torn reads are harmless because the slot is
        re-read under the lock.
        """
        view = self._view
        if int(view.version[0]) == self._seen_version:
            return None
        with self._lock:
            self._seen_version = int(view.version[0])
            if self._seen_version == 0:
                return None
            stored = float(view.objective[0])
            if not (stored < objective - 1e-12):
                return None
            return stored, view.assign.copy(), view.blocked.copy()


def attach_incumbent(
    handle: IncumbentHandle, lock: LockLike, period: int = 50
) -> IncumbentExchange:
    """Worker-side client over the slot *handle* (attach-only; the
    parent unlinks)."""
    shm = SharedMemory(name=handle.segment)
    _untrack(shm)
    view = _SlotView(shm.buf, handle.num_shards, handle.num_machines, shm=shm)
    return IncumbentExchange(view, lock, period)


def local_incumbent_exchange(
    num_shards: int, num_machines: int, period: int = 50
) -> IncumbentExchange:
    """In-process exchange (plain buffer, no lock) for the serial path:
    sequential cooperative restarts adopt the best of earlier ones."""
    buf = bytearray(_SlotView.nbytes(num_shards, num_machines))
    return IncumbentExchange(
        _SlotView(memoryview(buf), num_shards, num_machines), _NullLock(), period
    )
