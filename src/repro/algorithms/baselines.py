"""Baseline rebalancers.

These are the comparison points of experiment E3/E5:

* :class:`NoopRebalancer` — the "before" row.
* :class:`GreedyRebalancer` — classic drain-the-hottest-machine greedy.
* :class:`LocalSearchRebalancer` — move/swap steepest local search, the
  stand-in for the state-of-the-art method the paper compares against
  (see DESIGN.md §1.4 for the justification).
* :class:`RandomRestartRebalancer` — randomized-rounding control.

All baselines are *transient-safe*: they only take steps that are
directly executable in the current cluster (the destination can hold the
in-flight copy).  This is what an operator without exchange machines must
do, and it is precisely the handicap resource exchange removes.  They
also never target blocked or offline machines, so they run unchanged on
degraded fleets (e.g. the ``failure-storm`` scenario family).
"""

from __future__ import annotations

import time

import numpy as np

from repro.cluster import ClusterState, ExchangeLedger
from repro.migration import StagingPlanner
from repro.algorithms.base import RebalanceResult, Rebalancer, finalize_result

__all__ = [
    "NoopRebalancer",
    "GreedyRebalancer",
    "LocalSearchRebalancer",
    "RandomRestartRebalancer",
]


class NoopRebalancer(Rebalancer):
    """Propose no change (the 'before' measurement)."""

    name = "noop"

    def rebalance(
        self, state: ClusterState, ledger: ExchangeLedger | None = None
    ) -> RebalanceResult:
        started = time.perf_counter()  # repro: allow-wall-clock (runtime reporting)
        return finalize_result(
            self.name,
            state,
            state.assignment,
            ledger=ledger,
            planner=StagingPlanner(),
            started_at=started,
        )


class GreedyRebalancer(Rebalancer):
    """Drain the hottest machine while it improves the peak.

    Each step moves the largest shard of the peak machine to the machine
    that minimizes the resulting peak utilization, provided the move is
    directly executable (destination headroom covers the in-flight copy)
    and strictly improves the cluster peak.  Terminates when no such move
    exists.
    """

    name = "greedy"

    def __init__(self, *, max_moves: int | None = None) -> None:
        self.max_moves = max_moves

    def rebalance(
        self, state: ClusterState, ledger: ExchangeLedger | None = None
    ) -> RebalanceResult:
        started = time.perf_counter()  # repro: allow-wall-clock (runtime reporting)
        work = state.copy()
        budget = self.max_moves if self.max_moves is not None else 4 * state.num_shards
        for _ in range(budget):
            if not self._improve_once(work):
                break
        return finalize_result(
            self.name,
            state,
            work.assignment,
            ledger=ledger,
            planner=StagingPlanner(),
            started_at=started,
        )

    @staticmethod
    def _improve_once(work: ClusterState) -> bool:
        machine_peak = work.machine_peak_utilization()
        hottest = int(np.argmax(machine_peak))
        peak = machine_peak[hottest]
        members = work.machine_shards(hottest)
        if members.size == 0:
            return False
        headroom = work.capacity - work.loads
        # Try the machine's shards from largest demand down.
        for j in members[np.argsort(-work.demand[members].sum(axis=1))]:
            extra = work.demand[j]
            fits = np.all(headroom >= extra - 1e-12, axis=1)
            fits[hottest] = False
            fits[work.blocked_mask] = False
            peers = work.replica_peer_machines(int(j))
            if peers.size:
                fits[peers] = False
            candidates = np.flatnonzero(fits)
            if candidates.size == 0:
                continue
            # Peak of each candidate after receiving the shard.
            cand_peak = (
                (work.loads[candidates] + extra) / work.capacity[candidates]
            ).max(axis=1)
            best = int(candidates[np.argmin(cand_peak)])
            # Global peak after the move must strictly improve.
            others = np.delete(machine_peak, hottest)
            src_after = float(
                ((work.loads[hottest] - extra) / work.capacity[hottest]).max()
            )
            new_peak = max(
                float(cand_peak.min()),
                src_after,
                float(others.max(initial=0.0)) if others.size else 0.0,
            )
            if new_peak < peak - 1e-12:
                work.move(int(j), best)
                return True
        return False


class LocalSearchRebalancer(Rebalancer):
    """Steepest-descent local search over single moves and pair swaps.

    Every accepted step is directly executable:

    * a **move** requires the destination to hold the in-flight copy;
    * a **swap** requires an execution order (one shard parks on its
      destination first) in which both hops are individually executable.

    Search runs first-improvement passes over a randomized neighbourhood
    ordering until a pass yields no improvement or the step budget is
    exhausted.  The objective is cluster peak utilization, tie-broken by
    the sum of squared machine peaks (same landscape SRA uses).
    """

    name = "local-search"

    def __init__(
        self,
        *,
        max_steps: int = 10_000,
        seed: int = 0,
        neighborhood_sample: int = 64,
    ) -> None:
        if max_steps <= 0:
            raise ValueError(f"max_steps must be > 0, got {max_steps}")
        if neighborhood_sample <= 0:
            raise ValueError("neighborhood_sample must be > 0")
        self.max_steps = max_steps
        self.seed = seed
        self.neighborhood_sample = neighborhood_sample

    # ------------------------------------------------------------------ API
    def rebalance(
        self, state: ClusterState, ledger: ExchangeLedger | None = None
    ) -> RebalanceResult:
        started = time.perf_counter()  # repro: allow-wall-clock (runtime reporting)
        rng = np.random.default_rng(self.seed)
        work = state.copy()
        history = [work.peak_utilization()]
        steps = self.improve_in_place(work, rng, history=history)
        return finalize_result(
            self.name,
            state,
            work.assignment,
            ledger=ledger,
            planner=StagingPlanner(),
            started_at=started,
            iterations=steps,
            history=history,
        )

    def improve_in_place(
        self,
        work: ClusterState,
        rng: np.random.Generator,
        *,
        history: list[float] | None = None,
        max_steps: int | None = None,
    ) -> int:
        """Run the move/swap descent on *work* in place; returns step count.

        Blocked machines are never chosen as targets, so the descent is
        also usable as SRA's polish phase without breaking the
        designated-return contract.
        """
        budget = self.max_steps if max_steps is None else max_steps
        steps = 0
        improved = True
        while improved and steps < budget:
            improved = False
            if self._try_move(work, rng) or self._try_swap(work, rng):
                improved = True
                steps += 1
                if history is not None:
                    history.append(work.peak_utilization())
        return steps

    # ------------------------------------------------------------- internal
    @staticmethod
    def _score(machine_peak: np.ndarray) -> tuple[float, float]:
        return float(machine_peak.max()), float(np.sum(machine_peak**2))

    def _try_move(self, work: ClusterState, rng: np.random.Generator) -> bool:
        machine_peak = work.machine_peak_utilization()
        current = self._score(machine_peak)
        hottest = int(np.argmax(machine_peak))
        members = work.machine_shards(hottest)
        if members.size == 0:
            return False
        sample = members
        if sample.size > self.neighborhood_sample:
            sample = rng.choice(members, size=self.neighborhood_sample, replace=False)
        headroom = work.capacity - work.loads
        for j in sample:
            extra = work.demand[j]
            fits = np.all(headroom >= extra - 1e-12, axis=1)
            fits[hottest] = False
            fits[work.blocked_mask] = False
            peers = work.replica_peer_machines(int(j))
            if peers.size:
                fits[peers] = False
            for i in np.flatnonzero(fits):
                new_peak = machine_peak.copy()
                new_peak[hottest] = ((work.loads[hottest] - extra) / work.capacity[hottest]).max()
                new_peak[i] = ((work.loads[i] + extra) / work.capacity[i]).max()
                if self._score(new_peak) < current:
                    work.move(int(j), int(i))
                    return True
        return False

    def _try_swap(self, work: ClusterState, rng: np.random.Generator) -> bool:
        machine_peak = work.machine_peak_utilization()
        current = self._score(machine_peak)
        hottest = int(np.argmax(machine_peak))
        hot_members = work.machine_shards(hottest)
        if hot_members.size == 0:
            return False
        coolest_order = np.argsort(machine_peak)
        for i in coolest_order[: min(8, work.num_machines)]:
            i = int(i)
            if i == hottest:
                continue
            cool_members = work.machine_shards(i)
            if cool_members.size == 0:
                continue
            hs = hot_members
            cs = cool_members
            if hs.size > self.neighborhood_sample:
                hs = rng.choice(hs, size=self.neighborhood_sample, replace=False)
            if cs.size > self.neighborhood_sample:
                cs = rng.choice(cs, size=self.neighborhood_sample, replace=False)
            for j1 in hs:
                for j2 in cs:
                    if self._swap_if_better(
                        work, int(j1), hottest, int(j2), i, machine_peak, current
                    ):
                        return True
        return False

    def _swap_if_better(
        self,
        work: ClusterState,
        j1: int,
        m1: int,
        j2: int,
        m2: int,
        machine_peak: np.ndarray,
        current: tuple[float, float],
    ) -> bool:
        d1, d2 = work.demand[j1], work.demand[j2]
        # Replica anti-affinity after the swap: j1 lands on m2, j2 on m1.
        peers1 = work.replica_peers(j1)
        if peers1.size and np.any(
            (work.assignment_view()[peers1] == m2) & (peers1 != j2)
        ):
            return False
        peers2 = work.replica_peers(j2)
        if peers2.size and np.any(
            (work.assignment_view()[peers2] == m1) & (peers2 != j1)
        ):
            return False
        load1 = work.loads[m1] - d1 + d2
        load2 = work.loads[m2] - d2 + d1
        if np.any(load1 > work.capacity[m1] + 1e-12) or np.any(
            load2 > work.capacity[m2] + 1e-12
        ):
            return False
        # Executability: one order must work. Order A (j1 first): m2 must
        # hold its load + in-flight j1; then j2 leaves, j1 lands. Order B
        # symmetric.
        order_a = np.all(work.loads[m2] + d1 <= work.capacity[m2] + 1e-12)
        order_b = np.all(work.loads[m1] + d2 <= work.capacity[m1] + 1e-12)
        if not (order_a or order_b):
            return False
        new_peak = machine_peak.copy()
        new_peak[m1] = (load1 / work.capacity[m1]).max()
        new_peak[m2] = (load2 / work.capacity[m2]).max()
        if self._score(new_peak) < current:
            work.move(j1, m2)
            work.move(j2, m1)
            return True
        return False


class RandomRestartRebalancer(Rebalancer):
    """Randomized control: k random greedy reconstructions, keep the best.

    Shards are shuffled and re-placed best-fit (minimizing post-insert
    peak) from scratch; the best of ``restarts`` attempts is proposed.
    Ignores move costs entirely, so it bounds what *any* amount of
    migration could achieve with a naive constructor.
    """

    name = "random-restart"

    def __init__(self, *, restarts: int = 8, seed: int = 0) -> None:
        if restarts <= 0:
            raise ValueError(f"restarts must be > 0, got {restarts}")
        self.restarts = restarts
        self.seed = seed

    def rebalance(
        self, state: ClusterState, ledger: ExchangeLedger | None = None
    ) -> RebalanceResult:
        started = time.perf_counter()  # repro: allow-wall-clock (runtime reporting)
        rng = np.random.default_rng(self.seed)
        best_assign = state.assignment
        best_peak = state.peak_utilization()
        for _ in range(self.restarts):
            assign = self._construct(state, rng)
            if assign is None:
                continue
            trial = state.copy()
            trial.apply_assignment(assign)
            peak = trial.peak_utilization()
            if peak < best_peak:
                best_peak = peak
                best_assign = assign
        return finalize_result(
            self.name,
            state,
            best_assign,
            ledger=ledger,
            planner=StagingPlanner(),
            started_at=started,
            iterations=self.restarts,
        )

    @staticmethod
    def _construct(state: ClusterState, rng: np.random.Generator) -> np.ndarray | None:
        loads = np.zeros_like(state.loads)
        assign = np.empty(state.num_shards, dtype=np.int64)
        blocked = state.blocked_mask
        if blocked.all():
            return None
        for j in rng.permutation(state.num_shards):
            extra = state.demand[j]
            peak_after = ((loads + extra) / state.capacity).max(axis=1)
            peak_after[blocked] = np.inf
            i = int(np.argmin(peak_after))
            if np.any(loads[i] + extra > state.capacity[i] + 1e-12):
                return None  # cannot place within capacity
            assign[j] = i
            loads[i] += extra
        return assign
