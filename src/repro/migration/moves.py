"""Move primitives: the difference between two assignments.

A :class:`Move` relocates one shard from its current machine to a target
machine.  While a move is *in flight* the shard's resources are held on
both machines — the transient resource constraint that motivates the
whole paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import ClusterState

__all__ = ["Move", "diff_moves"]


@dataclass(frozen=True)
class Move:
    """Relocate ``shard_id`` from ``src`` to ``dst``.

    ``bytes`` is the data volume to copy (drives the makespan model).
    ``hop_of`` is -1 for direct moves; staged (multi-hop) moves record the
    shard's original source so reports can group hops per logical move.
    """

    shard_id: int
    src: int
    dst: int
    bytes: float
    hop_of: int = -1

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"move of shard {self.shard_id} has src == dst == {self.src}")
        if self.bytes < 0:
            raise ValueError(f"move bytes must be >= 0, got {self.bytes}")

    @property
    def is_staged_hop(self) -> bool:
        return self.hop_of >= 0


def diff_moves(
    state: ClusterState,
    target_assignment: np.ndarray,
) -> list[Move]:
    """Moves turning *state*'s current assignment into *target_assignment*.

    Shards already in place generate no move.  The state must be fully
    assigned; the target must reference valid machines.
    """
    if not state.is_fully_assigned():
        raise ValueError("diff requires a fully assigned state")
    target = np.asarray(target_assignment, dtype=np.int64)
    if target.shape != (state.num_shards,):
        raise ValueError(
            f"target must have shape ({state.num_shards},), got {target.shape}"
        )
    if np.any((target < 0) | (target >= state.num_machines)):
        raise ValueError("target references unknown machines")
    current = state.assignment_view()
    changed = np.flatnonzero(current != target)
    return [
        Move(
            shard_id=int(j),
            src=int(current[j]),
            dst=int(target[j]),
            bytes=float(state.sizes[j]),
        )
        for j in changed
    ]
