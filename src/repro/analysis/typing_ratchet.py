"""Mypy strictness ratchet.

The repo types incrementally: a lenient baseline everywhere, with
packages promoted to a strict flag set (``disallow_untyped_defs`` & co.
in ``pyproject.toml`` per-module overrides) as they are annotated.  This
tool makes that a one-way door:

* a **strict package regressing** (any mypy error inside it) fails;
* a **strict package being demoted** (listed in the committed baseline
  but no longer configured strict in pyproject.toml) fails;
* the **repo-wide error count growing** past the committed total fails.

The committed baseline is ``typing-baseline.json`` at the repo root.
Counts shrinking never fails — the tool just suggests tightening the
baseline.  When mypy is not installed the ratchet skips with a warning
(exit 0) unless ``--require-mypy`` is given, so minimal environments can
still run the test suite; CI installs mypy and passes the flag.
Parsing is pure (``parse_mypy_output``), so the ratchet logic is fully
testable without mypy.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import subprocess
import sys
import tomllib
from pathlib import Path
from typing import Mapping, Sequence

from repro.analysis.cli import find_root

__all__ = [
    "package_of",
    "parse_mypy_output",
    "strict_packages_from_pyproject",
    "evaluate",
    "main",
]

DEFAULT_BASELINE = "typing-baseline.json"

#: The strict per-module override flags a promoted package must carry
#: (mirrors the repro.parallel override block in pyproject.toml).
STRICT_FLAG = "disallow_untyped_defs"


def package_of(path: str) -> str:
    """Ratchet package of a mypy error path.

    ``src/repro/obs/tracer.py`` -> ``repro.obs``; top-level modules
    (``src/repro/cli.py``) -> ``repro``.
    """
    parts = path.replace("\\", "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if len(parts) >= 3:
        return ".".join(parts[:2])
    if parts:
        return parts[0]
    return path


def parse_mypy_output(text: str) -> dict[str, int]:
    """Per-package error counts from raw ``mypy`` stdout."""
    counts: dict[str, int] = {}
    for line in text.splitlines():
        # "path.py:12: error: message  [code]" (or path:line:col: error:)
        head, sep, _ = line.partition(": error:")
        if not sep:
            continue
        path = head.split(":", 1)[0].strip()
        if not path.endswith(".py"):
            continue
        pkg = package_of(path)
        counts[pkg] = counts.get(pkg, 0) + 1
    return counts


def strict_packages_from_pyproject(text: str) -> frozenset[str]:
    """Packages whose pyproject mypy override sets the strict flags."""
    data = tomllib.loads(text)
    overrides = data.get("tool", {}).get("mypy", {}).get("overrides", [])
    strict: set[str] = set()
    for entry in overrides:
        if not entry.get(STRICT_FLAG, False):
            continue
        modules = entry.get("module", [])
        if isinstance(modules, str):
            modules = [modules]
        for mod in modules:
            strict.add(mod.removesuffix(".*"))
    return frozenset(strict)


def evaluate(
    counts: Mapping[str, int],
    baseline: Mapping[str, object],
    strict_in_config: frozenset[str],
) -> list[str]:
    """Ratchet failures (empty list = pass)."""
    failures: list[str] = []
    baseline_strict = {str(p) for p in baseline.get("strict_packages", [])}  # type: ignore[union-attr]
    for pkg in sorted(baseline_strict - strict_in_config):
        failures.append(
            f"strict package {pkg} was demoted: its pyproject.toml override "
            f"no longer sets {STRICT_FLAG}"
        )
    for pkg in sorted(strict_in_config | baseline_strict):
        errors = counts.get(pkg, 0)
        if errors:
            failures.append(f"strict package {pkg} regressed: {errors} error(s)")
    total = sum(counts.values())
    allowed = int(baseline.get("total_errors", 0))  # type: ignore[call-overload, arg-type]
    if total > allowed:
        failures.append(
            f"repo-wide mypy error count grew: {total} > baseline {allowed}"
        )
    return failures


def _run_mypy(targets: Sequence[str], cwd: Path) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", *targets],
        cwd=cwd,
        capture_output=True,
        text=True,
        check=False,
    )
    return proc.stdout


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.typing_ratchet",
        description="fail when mypy strictness regresses "
        "(strict packages, repo-wide error count)",
    )
    parser.add_argument("targets", nargs="*", default=None,
                        help="mypy targets (default: src/repro)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: auto-detected)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help=f"baseline (default: <root>/{DEFAULT_BASELINE})")
    parser.add_argument("--mypy-output", default=None, metavar="PATH",
                        help="parse this saved mypy output instead of "
                             "running mypy")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current run")
    parser.add_argument("--require-mypy", action="store_true",
                        help="fail (exit 2) when mypy is not installed "
                             "instead of skipping")
    args = parser.parse_args(argv)

    root = find_root(Path(args.root) if args.root else Path.cwd())
    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    )
    pyproject = root / "pyproject.toml"
    strict = (
        strict_packages_from_pyproject(pyproject.read_text(encoding="utf-8"))
        if pyproject.exists()
        else frozenset()
    )

    if args.mypy_output is not None:
        output = Path(args.mypy_output).read_text(encoding="utf-8")
    else:
        if importlib.util.find_spec("mypy") is None:
            print("typing-ratchet: mypy not installed; skipping"
                  + (" (--require-mypy set)" if args.require_mypy else ""))
            return 2 if args.require_mypy else 0
        output = _run_mypy(args.targets or ["src/repro"], root)

    counts = parse_mypy_output(output)
    total = sum(counts.values())

    if args.update_baseline:
        doc = {
            "version": 1,
            "comment": (
                "mypy ratchet: strict packages must stay error-free and "
                "configured strict; the repo-wide error count may only "
                "shrink."
            ),
            "total_errors": total,
            "packages": dict(sorted(counts.items())),
            "strict_packages": sorted(strict),
        }
        baseline_path.write_text(json.dumps(doc, indent=2) + "\n",
                                 encoding="utf-8")
        print(f"typing-ratchet: baseline updated ({total} error(s), "
              f"{len(strict)} strict package(s)) -> {baseline_path}")
        return 0

    if not baseline_path.exists():
        print(f"typing-ratchet: no baseline at {baseline_path}; run "
              "--update-baseline first")
        return 2
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))

    failures = evaluate(counts, baseline, strict)
    for failure in failures:
        print(f"typing-ratchet: FAIL: {failure}")
    if failures:
        return 1
    allowed = int(baseline.get("total_errors", 0))
    print(f"typing-ratchet: ok ({total} error(s) <= baseline {allowed}, "
          f"{len(strict)} strict package(s))")
    if total < allowed:
        print("typing-ratchet: error count shrank — consider "
              "--update-baseline to lock it in")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
