"""Wave scheduling of shard moves under the transient resource constraint.

The scheduler orders a set of moves into **waves**.  All moves in a wave
run concurrently; while a move is in flight its shard's demand is held on
*both* the source and the destination machine.  A move may start in a wave
only if, counting every in-flight copy, no machine exceeds capacity.
Sources release their copy when the wave completes.

When no remaining move can start, the residual move set is **capacity
deadlocked** (machines must mutually free space for each other).  The
scheduler reports stranded moves; :mod:`repro.migration.staging` breaks
such deadlocks by routing shards through machines with spare headroom —
which is exactly the role borrowed exchange machines play in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.cluster import ClusterState
from repro.migration.moves import Move

__all__ = ["Schedule", "WaveScheduler"]


@dataclass
class Schedule:
    """Result of wave scheduling.

    Attributes
    ----------
    waves:
        Ordered list of concurrent move batches.
    stranded:
        Moves that could not be scheduled (empty iff ``feasible``).
    peak_transient_utilization:
        Highest machine utilization observed at any point during the
        migration, in-flight copies included.
    """

    waves: list[list[Move]] = field(default_factory=list)
    stranded: list[Move] = field(default_factory=list)
    peak_transient_utilization: float = 0.0

    @property
    def feasible(self) -> bool:
        return not self.stranded

    @property
    def num_waves(self) -> int:
        return len(self.waves)

    @property
    def num_moves(self) -> int:
        return sum(len(w) for w in self.waves)

    def all_moves(self) -> list[Move]:
        """Scheduled moves in execution order."""
        return [mv for wave in self.waves for mv in wave]

    def total_bytes(self) -> float:
        """Bytes copied by the scheduled moves (staging hops included)."""
        return float(sum(mv.bytes for mv in self.all_moves()))


class WaveScheduler:
    """Greedy transient-feasible wave construction.

    Parameters
    ----------
    atol:
        Capacity-comparison tolerance.
    prefer_large_first:
        Within a wave, try to start large moves first — draining heavy
        shards early frees the most space for later waves (greedy
        heuristic; both orders are admissible).
    """

    def __init__(self, *, atol: float = 1e-9, prefer_large_first: bool = True) -> None:
        self.atol = atol
        self.prefer_large_first = prefer_large_first

    def schedule(self, state: ClusterState, moves: list[Move]) -> Schedule:
        """Schedule *moves* starting from *state*'s current placement.

        The input state is not mutated.  Moves must reference shards that
        currently sit on their ``src`` (as produced by ``diff_moves`` or a
        prior staging hop sequence — hop chains are handled because later
        hops only become startable after the earlier hop retires).
        """
        loads = state.loads.copy()
        capacity = state.capacity
        demand = state.demand
        # Shard location tracking so multi-hop chains schedule correctly.
        location = state.assignment.copy()

        pending = list(moves)
        if self.prefer_large_first:
            pending.sort(key=lambda mv: -mv.bytes)
        schedule = Schedule()
        # The transient peak of an empty move list is the fleet's current
        # peak, not 0.0 — "no migration" still leaves machines loaded.
        peak = float(np.max(loads / capacity)) if loads.size else 0.0
        has_replicas = bool(state.replica_groups)
        tracer = obs.current().tracer
        trace_on = tracer.enabled

        while pending:
            wave: list[Move] = []
            in_flight = np.zeros_like(loads)
            started: set[int] = set()  # shards moving this wave
            for mv in pending:
                if mv.shard_id in started:
                    continue  # one hop per shard per wave
                if location[mv.shard_id] != mv.src:
                    continue  # earlier hop not completed yet
                if has_replicas and self._replica_blocked(
                    state, location, mv.shard_id, mv.dst
                ):
                    continue  # a sibling currently lives on the destination
                extra = demand[mv.shard_id]
                if np.all(
                    loads[mv.dst] + in_flight[mv.dst] + extra
                    <= capacity[mv.dst] + self.atol
                ):
                    in_flight[mv.dst] += extra
                    wave.append(mv)
                    started.add(mv.shard_id)
            if not wave:
                schedule.stranded = pending
                break
            # Peak transient utilization during this wave.
            peak = max(peak, float(np.max((loads + in_flight) / capacity)))
            # Retire the wave: release sources, land destinations.
            for mv in wave:
                loads[mv.src] -= demand[mv.shard_id]
                loads[mv.dst] += demand[mv.shard_id]
                location[mv.shard_id] = mv.dst
            schedule.waves.append(wave)
            if trace_on:
                tracer.event(
                    "migration.wave",
                    wave=len(schedule.waves) - 1,
                    moves=len(wave),
                    bytes=float(sum(mv.bytes for mv in wave)),
                    transient_peak=peak,
                )
            done = {id(mv) for mv in wave}
            pending = [mv for mv in pending if id(mv) not in done]

        schedule.peak_transient_utilization = peak
        return schedule

    def is_feasible(self, state: ClusterState, moves: list[Move]) -> bool:
        """True when every move can be scheduled without staging."""
        return self.schedule(state, moves).feasible

    @staticmethod
    def _replica_blocked(
        state: ClusterState, location: np.ndarray, shard_id: int, dst: int
    ) -> bool:
        """True when a sibling replica currently occupies *dst*.

        Transient anti-affinity: even a copy in flight must not share a
        machine with a sibling, or a single machine failure during the
        migration would take out two replicas of one logical shard.
        """
        peers = state.replica_peers(shard_id)
        return bool(peers.size and np.any(location[peers] == dst))
