"""Per-query per-shard work profiles.

The simulator needs to know how much work each query causes on each
shard.  Rather than inventing a distribution, the profile is **measured**
by executing a real query sample against the sharded index once (the
broker reports postings traversed per shard); the simulator then replays
queries drawn from the measured sample.  This keeps the DES fast while
its service times come from an actual executable engine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.engine.broker import SearchBroker
from repro.engine.sharding import ShardedIndex
from repro.engine.text import Query

__all__ = ["WorkProfile"]


@dataclass(frozen=True)
class WorkProfile:
    """Measured (num_queries, num_shards) work matrix (postings traversed)."""

    work: np.ndarray

    def __post_init__(self) -> None:
        w = np.asarray(self.work, dtype=np.float64)
        if w.ndim != 2 or w.size == 0:
            raise ValueError(f"work must be a non-empty 2-D matrix, got shape {w.shape}")
        if np.any(w < 0):
            raise ValueError("work must be non-negative")
        object.__setattr__(self, "work", w)

    @property
    def num_queries(self) -> int:
        return int(self.work.shape[0])

    @property
    def num_shards(self) -> int:
        return int(self.work.shape[1])

    def shard_load_share(self) -> np.ndarray:
        """(s,) fraction of total work landing on each shard."""
        totals = self.work.sum(axis=0)
        return totals / max(totals.sum(), 1e-12)

    @staticmethod
    def measure(
        index: ShardedIndex, queries: Sequence[Query], *, k: int = 10
    ) -> "WorkProfile":
        """Execute *queries* against *index* and record per-shard work."""
        if not queries:
            raise ValueError("queries must be non-empty")
        broker = SearchBroker(index)
        rows = [broker.search(q, k=k).shard_work for q in queries]
        return WorkProfile(np.asarray(rows, dtype=np.float64))

    # ------------------------------------------------------------ persistence
    def save_json(self, path: str | Path) -> None:
        """Persist the profile (measuring is the expensive step; replaying
        a saved profile makes simulation runs byte-reproducible)."""
        Path(path).write_text(json.dumps({"version": 1, "work": self.work.tolist()}))

    @staticmethod
    def load_json(path: str | Path) -> "WorkProfile":
        """Load a profile written by :meth:`save_json`."""
        data = json.loads(Path(path).read_text())
        if data.get("version") != 1:
            raise ValueError(f"unsupported WorkProfile version {data.get('version')!r}")
        return WorkProfile(np.asarray(data["work"], dtype=np.float64))
