"""Multi-epoch online rebalancing under workload drift."""

from repro.online.drift import PopularityDrift, apply_demands
from repro.online.epochs import EpochReport, OnlineSimulator

__all__ = ["PopularityDrift", "apply_demands", "OnlineSimulator", "EpochReport"]
