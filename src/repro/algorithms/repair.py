"""Repair operators for the LNS.

A repair operator reinserts the shards a destroy operator removed.  Both
operators share the placement scoring: inserting shard *j* on machine *i*
is scored by the machine's peak utilization after insertion, with a large
penalty when the insertion overflows capacity (so overflow is used only
when nothing fits, and the objective's overload penalty then drives the
search away from it).  Blocked machines (SRA's designated-return
machines) score ``inf`` and are never chosen, as are machines hosting a
replica sibling of the shard being scored.

* :func:`greedy_best_fit` — insert largest-demand first, each on its
  best-scoring machine.
* :data:`regret2_insertion` — classic regret-2: repeatedly insert the
  shard whose best option beats its second-best by the most (the shard
  that will suffer most if postponed).  An instance of
  :class:`Regret2Insertion`, whose size gate is configurable via
  ``AlnsConfig.regret2_exact_max``.

Implementation notes (this is the hottest code in the library — see the
"Delta evaluation contract" section of docs/ARCHITECTURE.md):

* The score kernel works in *scaled utilization space* on the state's
  (d, m) structure-of-arrays mirrors (:meth:`ClusterState.loads_by_dim`
  and friends): it keeps ``util[k] = loads_t[k] * inv_cap[k]`` per
  dimension and scores an insertion as ``demand * inv_cap + util``, so
  the inner loop is a handful of contiguous row-wise fused ops with no
  divisions.  Overflow is detected in the same scaled space against
  pre-scaled thresholds; when thresholds are uniform across dimensions
  (homogeneous machines — the common fleet case) a one-comparison fast
  path detects overflow from the final max-score directly.
* Greedy needs no score matrix at all: it walks shards largest-first
  and scores one row on demand against the current utilization.  That
  is bitwise what the maintained-matrix variant computed, because every
  touched machine's column would have been refreshed from the same
  utilization rows before the row was read.
* Regret-2 keeps a (removed × machines) score matrix *current*: an
  insertion changes exactly one machine, so exactly one column is
  refreshed per step.  Build-time and column-refresh arithmetic use the
  *same* elementwise expressions, so the maintained matrix is bitwise
  what a from-scratch rebuild would produce.  Because insertions only
  ever add load, refreshed columns are monotone non-decreasing over a
  repair batch (``inf`` strike marks are re-applied from an explicit
  per-machine ledger) — the invariant the pruned path rests on.
* Regret-2 re-ranks the pending shards after every insertion.  While
  ``m <= regret2_exact_max`` this is one partition over the full active
  rows (:func:`_regret2_exact`); above it, :func:`_regret2_pruned`
  maintains per-row lazy top-``_TOP_T`` candidate lists plus an
  incrementally-updated regret key and only re-partitions rows whose
  lists were invalidated.  Column monotonicity makes the lists sound (a
  machine outside a row's list can never drop below the list's
  rescan-time threshold), so the pruned path produces **bitwise
  identical trajectories** to the exact path — the gate is a pure
  performance crossover, not a behaviour switch.
* Greedy and regret-2 (both paths) match the copy-based reference engine
  bitwise, pinned by the fixed-seed engine tests, the hypothesis parity
  property in tests/test_kernel_parity.py, and
  ``tools/bench_alns.py --check``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence

import numpy as np

from repro.cluster import ClusterState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (lns imports us)
    from repro.algorithms.lns import AlnsConfig

__all__ = [
    "RepairOperator",
    "Regret2Insertion",
    "greedy_best_fit",
    "regret2_insertion",
    "DEFAULT_REPAIR_OPS",
]

#: Score penalty for a placement that overflows capacity.
_OVERFLOW_PENALTY = 1e3

#: Default largest machine count for which regret-2 re-partitions the
#: full active score rows after every insertion; above it the pruned
#: top-list path runs (same trajectories, better asymptotics).  The
#: engine overrides this with ``AlnsConfig.regret2_exact_max``.
_EXACT_REGRET_MAX = 128

#: Per-row candidate-list width of the pruned regret-2 path.  Two would
#: suffice for correctness; the slack keeps lists valid across many
#: insertions before a row needs re-partitioning (well-balanced fleets
#: have densely packed scores, so narrow lists thrash).
_TOP_T = 32


class RepairOperator(Protocol):
    """Signature of a repair operator."""

    __name__: str

    def __call__(
        self,
        state: ClusterState,
        rng: np.random.Generator,
        removed: Sequence[int],
    ) -> None: ...


class _ScoreKernel:
    """Shared scoring machinery for one repair batch.

    Holds the removed shards and their demands, per-dimension scaled
    utilization rows (``util[k] = loads_t[k] * inv_cap[k]``, synced with
    the state by :meth:`refresh_machine`), pre-scaled overflow
    thresholds, and — when ``build`` — the score matrix.
    ``scores[r, i]`` is the peak utilization of machine ``i`` after
    inserting removed shard ``r`` there (+ overflow penalty, inf when
    blocked or replica-anti-affine).  ``build=False`` skips the matrix
    and its scratch buffers for callers that score rows on demand.
    """

    def __init__(
        self, state: ClusterState, removed: Sequence[int], *, build: bool = True
    ) -> None:
        self.state = state
        self.shards = np.asarray(removed, dtype=np.int64)
        self.demand = state.demand[self.shards]  # (q, d)
        q, d = self.demand.shape
        m = state.num_machines
        self.q = q
        self.m = m
        self.d = d
        self.inv_cap = state.inv_capacity_by_dim()  # (d, m), shared
        cap_t = state.capacity_by_dim()
        # Overflow thresholds in scaled space: load + demand > cap + tol
        # becomes (load + demand)·inv > (cap + tol)·inv since inv > 0.
        self.thr = (cap_t + 1e-12) * self.inv_cap  # (d, m)
        # Homogeneous machines give one threshold per machine across all
        # dimensions; then overflow(r, i) == max-score(r, i) > thr_row[i]
        # (float max is exact), a one-pass detection.
        self.thr_row = np.ascontiguousarray(self.thr[0])  # (m,)
        self.thr_uniform = bool((self.thr == self.thr_row).all())
        self._loads_t = state.loads_by_dim()  # live (d, m) mirror
        self.util = self._loads_t * self.inv_cap  # (d, m), private
        # Largest per-dimension demand in the batch: a monotone bound
        # proving "no removed shard overflows machine i in dimension k"
        # with one comparison per machine instead of one per (shard,
        # machine) pair.
        self.demand_max = self.demand.max(axis=0)  # (d,)
        self.dmax_inv = self.demand_max[:, None] * self.inv_cap  # (d, m)
        self.blocked_idx = np.flatnonzero(state.blocked_mask)
        self.group_rows: dict[int, list[int]] = {}
        if state.replica_groups:
            for row, j in enumerate(self.shards.tolist()):
                g = state.shards[j].replica_of
                if g >= 0:
                    self.group_rows.setdefault(g, []).append(row)
        if build:
            #: Per-machine ledger of rows whose entry is pinned at inf
            #: (replica anti-affinity at build time, strikes afterwards);
            #: :meth:`refresh_column` re-applies it after recomputing.
            self._struck: dict[int, list[int]] = {}
            self._cwork = np.empty((q, d))  # column_scores scratch
            self._cbuf = np.empty(q)
            self.scores = self._build_matrix()
        else:
            self._rwork = np.empty((d, m))  # row_scores scratch
            self._rbuf = np.empty(m)

    def _build_matrix(self) -> np.ndarray:
        state = self.state
        q, m, d = self.q, self.m, self.d
        scores = np.empty((q, m))
        work = np.empty((q, m))
        if self.thr_uniform:
            np.multiply(self.demand[:, 0, None], self.inv_cap[0], out=scores)
            scores += self.util[0]
            for k in range(1, d):
                np.multiply(self.demand[:, k, None], self.inv_cap[k], out=work)
                work += self.util[k]
                np.maximum(scores, work, out=scores)
            over = scores > self.thr_row
            np.add(scores, _OVERFLOW_PENALTY, out=scores, where=over)
        else:
            overflow = np.zeros((q, m), dtype=bool)
            over_k = np.empty((q, m), dtype=bool)
            for k in range(d):
                np.multiply(self.demand[:, k, None], self.inv_cap[k], out=work)
                np.add(work, self.util[k], out=work)
                # fl() is monotone, so work[r, i] <= fl(util[k, i] +
                # demand_max[k]·inv_cap[k, i]) for every row r: when that
                # bound clears the threshold everywhere, nothing overflows.
                if np.any(self.util[k] + self.dmax_inv[k] > self.thr[k]):
                    np.greater(work, self.thr[k], out=over_k)
                    np.logical_or(overflow, over_k, out=overflow)
                if k == 0:
                    np.copyto(scores, work)
                else:
                    np.maximum(scores, work, out=scores)
            np.add(scores, _OVERFLOW_PENALTY, out=scores, where=overflow)
        if self.blocked_idx.size:
            scores[:, self.blocked_idx] = np.inf
        if self.group_rows:
            for row in range(q):
                hosts = state.replica_peer_machines(int(self.shards[row]))
                if hosts.size:
                    scores[row, hosts] = np.inf
                    for i in hosts.tolist():
                        self._struck.setdefault(i, []).append(row)
        return scores

    def refresh_machine(self, machine: int) -> None:
        """Sync the scaled-utilization column after an insertion (same
        elementwise expression as the build, so the sync is bitwise)."""
        self.util[:, machine] = self._loads_t[:, machine] * self.inv_cap[:, machine]

    def column_scores(self, machine: int) -> np.ndarray:
        """(q,) current scores of every removed shard on *machine* (no
        inf marks — callers overlay blocked/struck state).  Returns a
        reused scratch buffer; copy before the next kernel call."""
        util_m = self.util[:, machine]  # (d,)
        inv_m = self.inv_cap[:, machine]
        work = self._cwork  # (q, d), matches build bitwise
        np.multiply(self.demand, inv_m, out=work)
        work += util_m
        col: np.ndarray = work.max(axis=1, out=self._cbuf)
        if self.thr_uniform:
            over = col > self.thr_row[machine]
            np.add(col, _OVERFLOW_PENALTY, out=col, where=over)
        else:
            thr_m = self.thr[:, machine]
            if np.any(util_m + self.dmax_inv[:, machine] > thr_m):
                over = (work > thr_m).any(axis=1)
                np.add(col, _OVERFLOW_PENALTY, out=col, where=over)
        return col

    def refresh_column(self, machine: int) -> None:
        """Recompute the score matrix column of *machine*, re-applying
        its inf strike marks.  (Blocked columns are never refreshed:
        placements never choose a blocked machine.)"""
        col = self.column_scores(machine)
        struck = self._struck.get(machine)
        if struck is not None:
            col[struck] = np.inf
        self.scores[:, machine] = col

    def strike(self, row: int, machine: int) -> None:
        """Pin ``scores[row, machine]`` at inf for the rest of the batch
        (a replica sibling of *row* now lives on *machine*)."""
        self.scores[row, machine] = np.inf
        self._struck.setdefault(machine, []).append(row)

    def row_scores(self, row: int) -> np.ndarray:
        """(m,) current scores of removed shard *row* on every machine,
        with blocked / replica-peer machines at inf — bitwise the row the
        maintained matrix would hold.  Returns a reused scratch buffer."""
        work = self._rwork  # (d, m)
        np.multiply(self.demand[row, :, None], self.inv_cap, out=work)
        work += self.util
        out: np.ndarray = work.max(axis=0, out=self._rbuf)
        if self.thr_uniform:
            over = out > self.thr_row
        else:
            over = (work > self.thr).any(axis=0)
        np.add(out, _OVERFLOW_PENALTY, out=out, where=over)
        if self.blocked_idx.size:
            out[self.blocked_idx] = np.inf
        if self.group_rows:
            hosts = self.state.replica_peer_machines(int(self.shards[row]))
            if hosts.size:
                out[hosts] = np.inf
        return out

    def fallback_machine(self, row: int) -> int:
        """Least-loaded open machine — used when every machine is blocked
        or anti-affine (replication factor near the machine count); the
        objective's replica penalty then drives repair next round."""
        state = self.state
        peak = ((state.loads + self.demand[row]) / state.capacity).max(axis=1)
        peak[state.blocked_mask] = np.inf
        return int(np.argmin(peak))

    def best_machine(self, row: int) -> int:
        """First-index argmin over the row's current scores."""
        row_scores = self.scores[row]
        choice = int(row_scores.argmin())
        if np.isfinite(row_scores[choice]):
            return choice
        return self.fallback_machine(row)

    def insert(self, row: int, machine: int) -> int:
        """Assign row's shard to *machine* and refresh caches.  Returns
        the shard's replica group (-1 when unreplicated) so callers can
        strike siblings."""
        shard_id = int(self.shards[row])
        self.state.assign_shard(shard_id, machine)
        self.refresh_machine(machine)
        if self.group_rows:
            return self.state.shards[shard_id].replica_of
        return -1


def greedy_best_fit(
    state: ClusterState, rng: np.random.Generator, removed: Sequence[int]
) -> None:
    """Insert removed shards, largest demand first, on best-scoring machines.

    Scores one row on demand per shard — no (removed × machines) matrix.
    Placements match the matrix formulation bitwise: the utilization rows
    are synced after every insertion, and ``replica_peer_machines`` at
    read time equals the build-time inf marks plus the strikes a
    maintained matrix would have accumulated.
    """
    if not removed:
        return
    order = sorted(removed, key=lambda j: -float(state.demand[j].sum()))
    kern = _ScoreKernel(state, order, build=False)
    for row in range(kern.q):
        row_scores = kern.row_scores(row)
        choice = int(row_scores.argmin())
        if row_scores[choice] != np.inf:
            machine = choice
        else:
            machine = kern.fallback_machine(row)
        kern.insert(row, machine)


def _regret2_exact(state: ClusterState, removed: Sequence[int]) -> None:
    """Regret-2 with re-ranking after every insertion (small m).

    Regrets are recomputed each step with one partition over the active
    rows of the maintained score matrix — at small m the whole active
    submatrix is a few KB, so this costs less than any bookkeeping that
    would avoid it.
    """
    kern = _ScoreKernel(state, removed)
    scores = kern.scores
    demand_mass = kern.demand.sum(axis=1)
    active = np.arange(kern.q)
    for _ in range(kern.q):
        if kern.m == 1:
            reg = np.full(active.size, np.inf)
        else:
            part = np.partition(scores[active], 1, axis=1)
            reg = part[:, 1] - part[:, 0]
        # Tie-break regret by demand so big shards go early.
        key = reg + 1e-9 * demand_mass[active]
        row = int(active[np.argmax(key)])
        machine = kern.best_machine(row)
        group = kern.insert(row, machine)
        active = active[active != row]
        if active.size == 0:
            break
        kern.refresh_column(machine)
        if group >= 0:
            for sibling in kern.group_rows.get(group, ()):
                if sibling != row:
                    kern.strike(sibling, machine)


def _regret2_pruned(state: ClusterState, removed: Sequence[int]) -> None:
    """Regret-2 with lazy per-row top-``_TOP_T`` candidate lists (large m).

    Produces **bitwise-identical trajectories** to :func:`_regret2_exact`
    while only re-partitioning rows whose candidate lists were
    invalidated.  Soundness: every column is monotone non-decreasing
    over the batch (insertions only add load; ``inf`` marks stick), so a
    machine outside a row's list — which scored at least the list's
    rescan-time threshold ``tau`` — can never drop below ``tau``.  The
    maintained list values are kept exactly current, so whenever the
    list's second-smallest value is ``<= tau`` the global two smallest
    row values are exactly the list's two smallest, and the regret is
    exact.  Otherwise the row is re-partitioned over the full matrix
    (the same operation the exact path performs every step).

    The selection key (regret + demand tie-break) is itself maintained
    incrementally: only rows whose lists were touched by the changed
    column get their key recomputed; inserted rows drop to ``-inf``.  A
    full first-index ``argmax`` over that array selects the same row the
    exact path's argmax over the ascending active subset selects.
    """
    kern = _ScoreKernel(state, removed)
    scores = kern.scores
    tie = 1e-9 * kern.demand.sum(axis=1)
    q, m = kern.q, kern.m
    T = min(_TOP_T, m)
    # pos[r, i] = 1 + position of machine i in row r's candidate list,
    # 0 when absent — an inverted index so the per-step "which lists
    # track the changed column" query is one strided column read instead
    # of a (q, T) comparison scan.
    pos = np.zeros((q, m), dtype=np.int16)
    col_nums = np.arange(1, T + 1, dtype=np.int16)
    top_val = np.empty((q, T))
    tau = np.empty(q)

    def _scan(rows_idx: np.ndarray) -> None:
        """(Re)build the candidate lists of *rows_idx* from the matrix."""
        sub_scores = scores[rows_idx]
        if T < m:
            idx = np.argpartition(sub_scores, T - 1, axis=1)[:, :T]
        else:
            idx = np.broadcast_to(np.arange(m), sub_scores.shape).copy()
        val = np.take_along_axis(sub_scores, idx, axis=1)
        top_val[rows_idx] = val
        tau[rows_idx] = val.max(axis=1)
        pos[rows_idx] = 0
        flat = rows_idx[:, None] * m + idx
        pos.ravel()[flat.ravel()] = np.tile(col_nums, rows_idx.size)

    _scan(np.arange(q))
    pair = np.partition(top_val, 1, axis=1)
    key = pair[:, 1] - pair[:, 0] + tie
    active = np.ones(q, dtype=bool)
    remaining = q
    for _ in range(q):
        row = int(key.argmax())
        machine = kern.best_machine(row)
        group = kern.insert(row, machine)
        active[row] = False
        key[row] = -np.inf
        remaining -= 1
        if remaining == 0:
            break
        kern.refresh_column(machine)
        if group >= 0:
            for sibling in kern.group_rows.get(group, ()):
                if active[sibling]:
                    kern.strike(sibling, machine)
        # Propagate the one changed column into the lists that track it,
        # re-partition rows whose lists can no longer prove they hold
        # the two smallest values, and refresh the touched keys.
        pcol = pos[:, machine]
        hit_rows = np.flatnonzero(pcol)
        if hit_rows.size:
            hit_cols = pcol[hit_rows].astype(np.intp) - 1
            top_val[hit_rows, hit_cols] = scores[hit_rows, machine]
            sub = top_val[hit_rows]
            sub.partition(1, axis=1)
            bad = hit_rows[sub[:, 1] > tau[hit_rows]]
            if bad.size:
                _scan(bad)
                sub = top_val[hit_rows]
                sub.partition(1, axis=1)
            keep = active[hit_rows]
            upd = hit_rows[keep]
            key[upd] = sub[keep, 1] - sub[keep, 0] + tie[upd]


class Regret2Insertion:
    """Regret-2 repair operator with a configurable exact-path size gate.

    Below/at ``exact_max`` machines the full-row re-partition path runs
    (:func:`_regret2_exact`); above it the pruned top-list path
    (:func:`_regret2_pruned`).  The two produce bitwise-identical
    trajectories, so the gate is purely a performance crossover.

    ``exact_max=None`` (the default module-level :data:`regret2_insertion`
    instance) defers to ``AlnsConfig.regret2_exact_max`` via the
    engine's :meth:`bind` protocol, falling back to the module default
    when used standalone.
    """

    # Class-level so every bound instance keeps the historical operator
    # name — adaptive-weight keys and reports stay stable.
    __name__ = "regret2_insertion"

    def __init__(self, exact_max: int | None = None) -> None:
        if exact_max is not None and exact_max < 1:
            raise ValueError(f"regret-2 exact_max must be >= 1, got {exact_max}")
        self.exact_max = exact_max

    def bind(self, config: "AlnsConfig") -> "Regret2Insertion":
        """Engine hook: resolve the size gate from the ALNS config.

        An explicitly constructed gate wins over the config so tests and
        power users can pin a path regardless of engine settings.
        """
        if self.exact_max is not None:
            return self
        return Regret2Insertion(config.regret2_exact_max)

    def __call__(
        self,
        state: ClusterState,
        rng: np.random.Generator,
        removed: Sequence[int],
    ) -> None:
        if not removed:
            return
        gate = self.exact_max if self.exact_max is not None else _EXACT_REGRET_MAX
        if state.num_machines > gate:
            _regret2_pruned(state, list(removed))
        else:
            _regret2_exact(state, list(removed))


#: Regret-2 insertion: place the shard with the largest regret first.
regret2_insertion: Regret2Insertion = Regret2Insertion()

#: Default operator portfolio of SRA.
DEFAULT_REPAIR_OPS: tuple[RepairOperator, ...] = (greedy_best_fit, regret2_insertion)
