"""Tests for the process-parallel execution layer (repro.parallel).

The load-bearing property is the determinism contract: seeds, best
objectives and merged artifacts are identical for any worker count.
"""

import os
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.algorithms import AlnsConfig, SRA, SRAConfig
from repro.parallel import (
    ParallelRunner,
    TaskSpec,
    run_experiments,
    run_sra_restarts,
    save_tables,
    spawn_seed,
    spawn_seeds,
)
from repro.workloads import SyntheticConfig, generate


# ----------------------------------------------------------------- task fns
# Module-level so they stay picklable under any multiprocessing start
# method.

def _square(x):
    return x * x


def _raise_value_error():
    raise ValueError("kaput")


def _hard_exit():
    os._exit(7)


def _sleep_forever():
    time.sleep(60)


def _unpicklable():
    return lambda: None


def _observed_work(n):
    bundle = obs.current()
    bundle.metrics.counter("work.items").inc(n)
    bundle.metrics.histogram("work.size", (1, 10, 100)).observe(n)
    with bundle.tracer.span("work.unit", n=n):
        bundle.tracer.event("work.tick", n=n)
    return n


def _small_state(seed=3):
    return generate(
        SyntheticConfig(
            num_machines=12,
            shards_per_machine=6,
            target_utilization=0.85,
            placement_skew=0.5,
            max_shard_fraction=0.35,
            seed=seed,
        )
    )


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(42, 4) == spawn_seeds(42, 4)

    def test_distinct_across_indices_and_masters(self):
        seeds = spawn_seeds(0, 16)
        assert len(set(seeds)) == 16
        assert spawn_seeds(0, 4) != spawn_seeds(1, 4)

    def test_spawn_seed_matches_batch(self):
        assert spawn_seed(7, 2) == spawn_seeds(7, 5)[2]

    def test_validation(self):
        with pytest.raises(ValueError, match="count"):
            spawn_seeds(0, -1)
        with pytest.raises(ValueError, match="index"):
            spawn_seed(0, -1)

    @settings(max_examples=25, deadline=None)
    @given(master=st.integers(0, 2**32 - 1), n=st.integers(0, 12), k=st.integers(0, 12))
    def test_prefix_stability(self, master, n, k):
        """Growing the restart budget never changes already-planned seeds."""
        lo, hi = sorted((n, k))
        assert spawn_seeds(master, hi)[:lo] == spawn_seeds(master, lo)

    @settings(max_examples=25, deadline=None)
    @given(master=st.integers(0, 2**32 - 1), n=st.integers(1, 8))
    def test_seeds_are_json_safe_ints(self, master, n):
        for seed in spawn_seeds(master, n):
            assert isinstance(seed, int)
            assert 0 <= seed < 2**63


class TestParallelRunner:
    def test_serial_equals_pool(self):
        specs = [TaskSpec(fn=_square, args=(i,), name=f"sq{i}") for i in range(6)]
        serial = ParallelRunner(1).run(specs)
        pool = ParallelRunner(3).run(specs)
        assert [r.value for r in serial] == [r.value for r in pool]
        assert [r.index for r in pool] == list(range(6))
        assert all(r.ok for r in pool)

    def test_empty(self):
        assert ParallelRunner(2).run([]) == []

    def test_exception_is_a_failure_row(self):
        for workers in (1, 2):
            rows = ParallelRunner(workers).run(
                [TaskSpec(fn=_raise_value_error, name="boom"),
                 TaskSpec(fn=_square, args=(2,), name="ok")]
            )
            assert not rows[0].ok and "kaput" in rows[0].error
            assert rows[1].ok and rows[1].value == 4

    def test_worker_crash_is_isolated(self):
        rows = ParallelRunner(2).run(
            [TaskSpec(fn=_hard_exit, name="die"),
             TaskSpec(fn=_square, args=(3,), name="ok")]
        )
        assert not rows[0].ok and "exitcode 7" in rows[0].error
        assert rows[1].ok and rows[1].value == 9

    def test_timeout_terminates_the_task(self):
        t0 = time.perf_counter()
        rows = ParallelRunner(2, timeout_s=0.5).run(
            [TaskSpec(fn=_sleep_forever, name="slow"),
             TaskSpec(fn=_square, args=(4,), name="ok")]
        )
        assert time.perf_counter() - t0 < 30
        assert rows[0].timed_out and not rows[0].ok
        assert rows[1].ok and rows[1].value == 16

    def test_unpicklable_result_reported(self):
        rows = ParallelRunner(2).run([TaskSpec(fn=_unpicklable, name="bad")])
        assert not rows[0].ok
        assert "picklable" in rows[0].error

    def test_validation(self):
        with pytest.raises(ValueError, match="n_workers"):
            ParallelRunner(0)
        with pytest.raises(ValueError, match="timeout_s"):
            ParallelRunner(2, timeout_s=0.0)


class TestObsMerge:
    def merged(self, workers):
        specs = [TaskSpec(fn=_observed_work, args=(n,), name=f"w{n}")
                 for n in (1, 5, 50)]
        with obs.observed() as bundle:
            ParallelRunner(workers).run(specs)
        return bundle

    @pytest.mark.parametrize("workers", [1, 2])
    def test_metrics_identical_serial_and_pool(self, workers):
        bundle = self.merged(workers)
        doc = bundle.metrics.to_dict()
        assert doc["counters"]["work.items"] == 56.0
        hist = doc["histograms"]["work.size"]
        assert hist["count"] == 3
        assert hist["counts"] == [1, 1, 1, 0]
        assert hist["min"] == 1 and hist["max"] == 50

    @pytest.mark.parametrize("workers", [1, 2])
    def test_trace_shape_identical_serial_and_pool(self, workers):
        records = self.merged(workers).tracer.records()
        spans = [r for r in records if r.get("kind") == "span"]
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        assert len(by_name["parallel.task"]) == 3
        assert len(by_name["work.unit"]) == 3
        # Every worker span hangs off a parallel.task span.
        task_ids = {s["id"] for s in by_name["parallel.task"]}
        assert {s["parent"] for s in by_name["work.unit"]} <= task_ids
        events = [r for r in records if r.get("kind") == "event"]
        assert sum(1 for e in events if e["name"] == "work.tick") == 3

    def test_no_obs_no_capture(self):
        rows = ParallelRunner(2).run([TaskSpec(fn=_observed_work, args=(1,))])
        assert rows[0].ok
        assert obs.current() is obs.NULL_OBS


class TestRestartDeterminism:
    """ISSUE 3 acceptance: identical objectives and seeds for any worker count."""

    def test_workers_1_2_4_identical(self):
        state = _small_state()
        config = SRAConfig(alns=AlnsConfig(iterations=60, seed=10))
        reports = {
            w: run_sra_restarts(state, config=config, restarts=3, n_workers=w)
            for w in (1, 2, 4)
        }
        ref = reports[1]
        assert ref.seeds == spawn_seeds(10, 3)
        for w in (2, 4):
            assert reports[w].seeds == ref.seeds
            assert reports[w].best.peak_after == ref.best.peak_after
            assert reports[w].best.iterations == ref.best.iterations
            np.testing.assert_array_equal(
                reports[w].best.target_assignment, ref.best.target_assignment
            )

    def test_per_restart_results_recorded(self):
        state = _small_state()
        config = SRAConfig(alns=AlnsConfig(iterations=40, seed=5))
        report = run_sra_restarts(state, config=config, restarts=2, n_workers=2)
        assert [r.seed for r in report.results] == list(report.seeds)
        assert all(r.ok for r in report.results)
        assert report.num_failed == 0

    def test_sra_config_wiring(self):
        state = _small_state()
        config = SRAConfig(alns=AlnsConfig(iterations=40, seed=5), restarts=2)
        via_sra = SRA(config).rebalance(state)
        direct = run_sra_restarts(
            state, config=SRAConfig(alns=AlnsConfig(iterations=40, seed=5)),
            restarts=2,
        )
        assert via_sra.peak_after == direct.best.peak_after
        assert via_sra.iterations == direct.best.iterations

    def test_n_workers_override_flows_to_alns(self):
        config = SRAConfig(n_workers=4)
        assert config.alns.n_workers == 4

    def test_validation(self):
        with pytest.raises(ValueError, match="restarts"):
            SRAConfig(restarts=0)
        with pytest.raises(ValueError, match="n_workers"):
            AlnsConfig(n_workers=0)
        with pytest.raises(ValueError, match="restarts"):
            run_sra_restarts(_small_state(), config=SRAConfig(), restarts=0)


class TestExperimentDriver:
    def test_rows_identical_across_worker_counts(self):
        serial = run_experiments(["e1"], n_workers=1)
        pool = run_experiments(["e1"], n_workers=2)
        assert serial[0].ok and pool[0].ok
        assert serial[0].rows == pool[0].rows
        assert serial[0].key == "e1"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiments"):
            run_experiments(["e99"])

    def test_save_tables(self, tmp_path):
        results = run_experiments(["e1"], n_workers=1)
        out = save_tables(results, tmp_path / "tables")
        assert (out / "e1.txt").exists()
        assert (out / "e1.json").exists()
        import json

        index = json.loads((out / "index.json").read_text())
        assert index["e1"]["ok"] and index["e1"]["rows"] > 0
