"""Scenario specs: typed parameter schemas, canonicalization, hashing.

A scenario is identified by a :class:`ScenarioSpec` — family name,
parameter overrides, seed.  Two properties make specs the cache key the
parallel driver and CI lean on:

* **Canonical form** — parameters are resolved against the family's
  declared schema (defaults filled in, values coerced to their declared
  type) and serialized with sorted keys, so logically equal specs have
  one canonical JSON rendering regardless of how the caller ordered or
  typed the parameters (``util=0.8`` vs ``util="0.8"``; ``{a,b}`` vs
  ``{b,a}``).
* **Content address** — :func:`spec_hash` is the SHA-256 of that
  canonical JSON.  Equal hash ⇒ equal generator inputs ⇒ (by the
  seeding contract, see docs/ARCHITECTURE.md "Scenario registry")
  byte-identical instances, so artifacts may be cached by hash.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["ParamSpec", "ScenarioSpec", "canonical_params", "spec_hash"]

#: Python types behind each declared parameter type.
_PARAM_TYPES: dict[str, type] = {"int": int, "float": float, "str": str, "bool": bool}


@dataclass(frozen=True)
class ParamSpec:
    """One declared parameter of a scenario family.

    Attributes
    ----------
    name:
        Parameter key, as written in specs and ``--param name=value``.
    type:
        ``"int"`` | ``"float"`` | ``"str"`` | ``"bool"``.
    default:
        Value used when a spec does not override the parameter.
    low / high:
        Inclusive numeric range (numeric types only; ``None`` = open).
    choices:
        Allowed values (``str`` parameters only; ``None`` = free).
    doc:
        One-line description shown by ``repro scenarios list/show``.
    """

    name: str
    type: str
    default: Any
    low: float | None = None
    high: float | None = None
    choices: tuple[str, ...] | None = None
    doc: str = ""

    def __post_init__(self) -> None:
        if self.type not in _PARAM_TYPES:
            raise ValueError(
                f"parameter {self.name!r}: unknown type {self.type!r} "
                f"(expected one of {sorted(_PARAM_TYPES)})"
            )
        object.__setattr__(self, "default", self.coerce(self.default))

    def coerce(self, value: Any) -> Any:
        """Coerce *value* to the declared type and check its range.

        Accepts strings (the CLI ``--param`` path) as well as Python
        values; raises ``ValueError`` with the parameter name, offending
        value and the legal range/choices on any violation.
        """
        py_type = _PARAM_TYPES[self.type]
        try:
            if self.type == "bool":
                coerced = _coerce_bool(value)
            elif self.type == "int":
                coerced = _coerce_int(value)
            else:
                coerced = py_type(value)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"parameter {self.name!r}: cannot read {value!r} as {self.type}"
            ) from exc
        if self.choices is not None and coerced not in self.choices:
            raise ValueError(
                f"parameter {self.name!r}: {coerced!r} is not one of {list(self.choices)}"
            )
        if self.low is not None and coerced < self.low:
            raise ValueError(
                f"parameter {self.name!r}: {coerced!r} is below the minimum {self.low!r}"
            )
        if self.high is not None and coerced > self.high:
            raise ValueError(
                f"parameter {self.name!r}: {coerced!r} is above the maximum {self.high!r}"
            )
        return coerced

    def describe(self) -> str:
        """Compact ``name=default [type, range]`` rendering for listings."""
        parts = [self.type]
        if self.choices is not None:
            parts.append("|".join(self.choices))
        elif self.low is not None or self.high is not None:
            lo = "-inf" if self.low is None else f"{self.low:g}"
            hi = "inf" if self.high is None else f"{self.high:g}"
            parts.append(f"{lo}..{hi}")
        return f"{self.name}={self.default!r} [{', '.join(parts)}]"


def _coerce_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
        raise ValueError(f"not a boolean: {value!r}")
    if isinstance(value, int):
        return bool(value)
    raise TypeError(f"not a boolean: {value!r}")


def _coerce_int(value: Any) -> int:
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("booleans are not integers here")
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if not value.is_integer():
            raise ValueError(f"not an integer: {value!r}")
        return int(value)
    return int(str(value), 10)


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully specified scenario: family + parameter overrides + seed.

    ``params`` holds only the caller's overrides; resolution against the
    family schema (defaults, coercion, validation) happens in
    :func:`repro.scenarios.registry.resolve_params`.  Specs are plain
    data and JSON round-trippable (:meth:`to_dict` / :meth:`from_dict`).
    """

    scenario: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        # Freeze the mapping so hashing/equality see stable contents.
        object.__setattr__(self, "params", dict(self.params))

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "params": dict(sorted(self.params.items())),
            "seed": int(self.seed),
        }

    @staticmethod
    def from_dict(doc: Mapping[str, Any]) -> "ScenarioSpec":
        return ScenarioSpec(
            scenario=str(doc["scenario"]),
            params=dict(doc.get("params", {})),
            seed=int(doc.get("seed", 0)),
        )


def canonical_params(resolved: Mapping[str, Any]) -> dict[str, Any]:
    """Sorted-key copy of an already-resolved parameter mapping."""
    return {key: resolved[key] for key in sorted(resolved)}


def spec_hash(scenario: str, resolved: Mapping[str, Any], seed: int) -> str:
    """Content address of a resolved spec: first 12 hex chars of the
    SHA-256 over the canonical JSON (sorted keys, coerced values).

    Floats are serialized through ``repr`` via ``json.dumps`` which is
    value-exact for Python floats, so equal values always hash equally
    and the hash is stable across processes and platforms.
    """
    doc = {
        "scenario": scenario,
        "params": canonical_params(resolved),
        "seed": int(seed),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]
