"""Mutable cluster placement state.

:class:`ClusterState` is the data structure every algorithm in the library
manipulates.  It couples an immutable description of the fleet (machine
capacities, shard demands) with the one piece of mutable state — the
assignment array ``assign[j] = machine index`` — and keeps the per-machine
load matrix incrementally up to date so that a single shard move costs
O(d) rather than O(n·d).

Hot-path contract (relied on by the LNS inner loop; see the "Delta
evaluation contract" section of docs/ARCHITECTURE.md):

* ``move``/``unassign``/``assign_shard`` update ``loads`` in O(d);
* incrementally maintained caches: per-machine shard counts
  (:meth:`shard_counts`, O(1) per move), the vacant in-service machine
  count (:attr:`num_vacant_in_service`), the unassigned-shard count
  (:meth:`is_fully_assigned` is O(1)), per-machine peak utilization
  (:meth:`machine_peak_utilization`, lazily refreshed for dirty rows
  only), a segmented block-max over those peaks (so
  :meth:`peak_utilization` rescans only blocks containing touched
  machines), and the replica anti-affinity conflict count
  (:attr:`replica_conflict_count`);
* ``capacity``, ``demand``, ``loads`` are dense ``float64`` arrays safe to
  read (but not write) directly; :meth:`loads_by_dim` /
  :meth:`capacity_by_dim` / :meth:`inv_capacity_by_dim` expose the same
  data as C-contiguous ``(d, m)`` structure-of-arrays mirrors, the layout
  the vectorized score kernels consume (see docs/ARCHITECTURE.md, "SoA
  memory layout");
* ``copy()`` is a cheap structural copy (arrays copied, descriptions
  shared);
* ``begin()``/``commit()``/``rollback()`` bracket a transaction: every
  ``move``/``assign_shard``/``unassign``/``unassign_many``/
  ``block_machine``/``unblock_machine`` inside the transaction is
  recorded in an undo journal, and ``rollback()`` restores the state —
  including every cache above — **bitwise** to its ``begin()`` image.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Sequence

import numpy as np

from repro.cluster.machine import Machine
from repro.cluster.resources import ResourceSchema, safe_ratio
from repro.cluster.shard import Shard

__all__ = ["ClusterState", "UNASSIGNED"]

#: Sentinel value in the assignment array for a shard not currently placed
#: (only ever observed transiently, inside destroy/repair cycles).
UNASSIGNED: int = -1

#: ``begin(mode="auto")`` picks the array-snapshot journal while
#: ``n + m·d`` is at most this many elements, and the per-operation
#: journal above it.  Snapshotting is a handful of ``memcpy`` calls and
#: beats per-op recording until the arrays are large; the per-op journal
#: costs O(touched) regardless of cluster size.
_SNAPSHOT_ELEMENT_LIMIT = 65_536

#: Machines per segment of the peak-utilization block-max.  Float ``max``
#: is exact and associative, so the global peak recomputed from block
#: maxima is bitwise-identical to a full scan — but after a transaction
#: touching k machines only ``O(k + m/B)`` elements are rescanned.
_PEAK_BLOCK = 1024


class _Frame:
    """One open transaction: either an array snapshot or an undo journal.

    Snapshot mode stores bitwise copies of the mutable arrays; rollback
    is a few ``np.copyto`` calls, O(n + m·d) with memcpy constants.

    Journal mode stores, for every shard / machine / blocked flag /
    replica-host counter *first touched* inside the frame, its value at
    ``begin()``; rollback restores exactly those values, O(touched·d).
    Both modes restore the state bitwise — they record old values rather
    than replaying inverse arithmetic (``(x + b) - b`` is not always
    ``x`` in floating point).
    """

    __slots__ = (
        "snapshot",
        "assign",
        "loads",
        "loads_t",
        "counts",
        "peak",
        "peak_dirty",
        "peak_any_dirty",
        "peak_block",
        "block_dirty",
        "block_any_dirty",
        "blocked",
        "shards",
        "machines",
        "blocked_old",
        "replica_hosts",
        "num_unassigned",
        "num_vacant",
        "conflicts",
    )

    def __init__(self, state: "ClusterState", snapshot: bool) -> None:
        self.snapshot = snapshot
        if snapshot:
            self.assign = state._assign.copy()
            self.loads = state._loads.copy()
            self.loads_t = state._loads_t.copy()
            self.counts = state._counts.copy()
            self.peak = state._peak.copy()
            self.peak_dirty = state._peak_dirty.copy()
            self.peak_any_dirty = state._peak_any_dirty
            self.peak_block = state._peak_block.copy()
            self.block_dirty = state._block_dirty.copy()
            self.block_any_dirty = state._block_any_dirty
            self.blocked = state._blocked.copy()
        else:
            self.shards: dict[int, int] = {}
            self.machines: dict[int, tuple[np.ndarray, int]] = {}
            self.blocked_old: dict[int, bool] = {}
        # Replica host counters are journaled per touched (group, machine)
        # pair in both modes: they live in nested dicts whose full copy
        # would be O(groups) even for a tiny transaction.
        self.replica_hosts: dict[tuple[int, int], int] = {}
        self.num_unassigned = state._num_unassigned
        self.num_vacant = state._num_vacant
        self.conflicts = state._replica_conflicts


class ClusterState:
    """Machines + shards + a (partial) assignment, with O(d) move updates.

    Parameters
    ----------
    machines:
        Machine descriptions with dense ids ``0..m-1``.
    shards:
        Shard descriptions with dense ids ``0..n-1``.
    assignment:
        Initial assignment: ``assignment[j]`` is the machine id hosting
        shard ``j`` (or :data:`UNASSIGNED`).  Defaults to all unassigned.

    Notes
    -----
    The constructor does **not** require the assignment to respect
    capacities — overloaded clusters are a legitimate input (that is what
    the rebalancer is for).  Use :meth:`is_within_capacity` to test.
    """

    def __init__(
        self,
        machines: Sequence[Machine],
        shards: Sequence[Shard],
        assignment: Sequence[int] | np.ndarray | None = None,
    ) -> None:
        if not machines:
            raise ValueError("ClusterState requires at least one machine")
        if not shards:
            raise ValueError("ClusterState requires at least one shard")
        schema = machines[0].schema
        for mach in machines:
            if mach.schema != schema:
                raise ValueError("all machines must share one resource schema")
        for sh in shards:
            if sh.schema != schema:
                raise ValueError("all shards must share the machines' resource schema")
        if [mach.id for mach in machines] != list(range(len(machines))):
            raise ValueError("machine ids must be dense 0..m-1 in order")
        if [sh.id for sh in shards] != list(range(len(shards))):
            raise ValueError("shard ids must be dense 0..n-1 in order")

        self._schema = schema
        self._machines: tuple[Machine, ...] = tuple(machines)
        self._shards: tuple[Shard, ...] = tuple(shards)
        self._capacity = np.stack([mach.capacity for mach in machines])  # (m, d)
        self._demand = np.stack([sh.demand for sh in shards])  # (n, d)
        self._sizes = np.array([sh.size_bytes for sh in shards], dtype=np.float64)
        self._exchange_mask = np.array([mach.exchange for mach in machines], dtype=bool)
        self._norm_demand: np.ndarray | None = None  # lazy, shared by copies
        # Lazy (d, m) SoA mirrors of the immutable capacity matrix, shared
        # by copies like _norm_demand.
        self._cap_t: np.ndarray | None = None
        self._inv_cap_t: np.ndarray | None = None

        n = len(shards)
        if assignment is None:
            self._assign = np.full(n, UNASSIGNED, dtype=np.int64)
        else:
            arr = np.asarray(assignment, dtype=np.int64)
            if arr.shape != (n,):
                raise ValueError(f"assignment must have shape ({n},), got {arr.shape}")
            bad = (arr != UNASSIGNED) & ((arr < 0) | (arr >= len(machines)))
            if np.any(bad):
                raise ValueError(f"assignment references unknown machines at shards {np.flatnonzero(bad)}")
            self._assign = arr.copy()
        self._blocked = np.zeros(len(machines), dtype=bool)
        self._offline = np.zeros(len(machines), dtype=bool)
        # Replica groups: logical shard id -> member shard ids (only for
        # shards declaring replica_of >= 0).  Anti-affinity (no two
        # members on one machine) is enforced by the algorithms, checked
        # via replica_conflicts().
        self._replica_of = np.array([sh.replica_of for sh in shards], dtype=np.int64)
        groups: dict[int, list[int]] = {}
        for sh in shards:
            if sh.replica_of >= 0:
                groups.setdefault(sh.replica_of, []).append(sh.id)
        self._replica_groups = {
            g: np.asarray(members, dtype=np.int64) for g, members in groups.items()
        }
        self._frame: _Frame | None = None
        self._rebuild_caches()

    # -------------------------------------------------------------- caches
    def _rebuild_caches(self) -> None:
        """Recompute every incrementally-maintained cache from scratch."""
        m = len(self._machines)
        self._loads = np.zeros_like(self._capacity)
        placed = self._assign != UNASSIGNED
        if np.any(placed):
            np.add.at(self._loads, self._assign[placed], self._demand[placed])
        self._counts = np.bincount(
            self._assign[placed], minlength=m
        ).astype(np.int64, copy=False)
        self._num_unassigned = int(np.sum(~placed))
        self._num_vacant = int(np.sum((self._counts == 0) & ~self._offline))
        # (d, m) C-contiguous SoA mirror of the load matrix, maintained in
        # lock-step with self._loads by every mutator (see loads_by_dim).
        self._loads_t = np.ascontiguousarray(self._loads.T)
        self._peak = (self._loads / self._capacity).max(axis=1)
        self._peak_dirty = np.zeros(m, dtype=bool)
        self._peak_any_dirty = False
        # Segmented block-max over the per-machine peaks: peak_utilization()
        # rescans only blocks whose members were touched.  Float max is
        # exact, so the blocked recomputation is bitwise-identical to a
        # full scan.
        self._peak_block = np.maximum.reduceat(
            self._peak, np.arange(0, m, _PEAK_BLOCK)
        )
        self._block_dirty = np.zeros(self._peak_block.size, dtype=bool)
        self._block_any_dirty = False
        # Replica host counters: group -> {machine -> member count}, and
        # the number of (machine, group) pairs hosting > 1 member.
        self._replica_hosts: dict[int, dict[int, int]] = {}
        self._replica_conflicts = 0
        for g, members in self._replica_groups.items():
            hosts: dict[int, int] = {}
            for j in members:
                mach = int(self._assign[j])
                if mach != UNASSIGNED:
                    cnt = hosts.get(mach, 0) + 1
                    hosts[mach] = cnt
                    if cnt == 2:
                        self._replica_conflicts += 1
            self._replica_hosts[g] = hosts

    def _refreshed_peaks(self) -> np.ndarray:
        """The live per-machine peak-utilization cache, refreshed lazily.

        Peak rows are marked dirty by mutations and recomputed here in
        one vectorized pass — bitwise identical to a from-scratch
        ``(loads / capacity).max(axis=1)`` because machine capacities are
        validated strictly positive.  Do not mutate the returned array.
        """
        if self._peak_any_dirty:
            idx = np.flatnonzero(self._peak_dirty)
            self._peak[idx] = (self._loads[idx] / self._capacity[idx]).max(axis=1)
            self._peak_dirty[idx] = False
            self._peak_any_dirty = False
        return self._peak

    # ---------------------------------------------------------------- sizes
    @property
    def schema(self) -> ResourceSchema:
        """Resource schema shared by all machines and shards."""
        return self._schema

    @property
    def num_machines(self) -> int:
        return len(self._machines)

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def dims(self) -> int:
        return self._schema.dims

    @property
    def machines(self) -> tuple[Machine, ...]:
        return self._machines

    @property
    def shards(self) -> tuple[Shard, ...]:
        return self._shards

    # --------------------------------------------------------------- arrays
    @property
    def capacity(self) -> np.ndarray:
        """(m, d) capacity matrix.  Read-only by convention."""
        return self._capacity

    @property
    def demand(self) -> np.ndarray:
        """(n, d) demand matrix.  Read-only by convention."""
        return self._demand

    @property
    def sizes(self) -> np.ndarray:
        """(n,) migration byte sizes.  Read-only by convention."""
        return self._sizes

    @property
    def loads(self) -> np.ndarray:
        """(m, d) current load matrix, maintained incrementally."""
        return self._loads

    @property
    def exchange_mask(self) -> np.ndarray:
        """(m,) bool mask of machines borrowed from the exchange pool."""
        return self._exchange_mask

    @property
    def assignment(self) -> np.ndarray:
        """Copy of the (n,) assignment array."""
        return self._assign.copy()

    def assignment_view(self) -> np.ndarray:
        """The live assignment array — do not mutate."""
        return self._assign

    def normalized_demand(self) -> np.ndarray:
        """(n, d) demand scaled to [0, 1] per dimension (cached; demand is
        immutable so the matrix is computed once and shared by copies)."""
        if self._norm_demand is None:
            self._norm_demand = self._demand / np.maximum(
                self._demand.max(axis=0, keepdims=True), 1e-12
            )
        return self._norm_demand

    def loads_by_dim(self) -> np.ndarray:
        """The live (d, m) C-contiguous load mirror — do not mutate.

        Row ``k`` is the per-machine load in dimension ``k``, bitwise
        equal to ``loads[:, k]`` at all times (maintained in lock-step by
        every mutator and restored by :meth:`rollback`).  This is the
        structure-of-arrays layout the vectorized score kernels stream
        over: one contiguous row per resource dimension.
        """
        return self._loads_t

    def capacity_by_dim(self) -> np.ndarray:
        """(d, m) C-contiguous capacity mirror (lazy; shared by copies).
        Do not mutate."""
        if self._cap_t is None:
            self._cap_t = np.ascontiguousarray(self._capacity.T)
        return self._cap_t

    def inv_capacity_by_dim(self) -> np.ndarray:
        """(d, m) elementwise ``1.0 / capacity`` mirror (lazy; shared by
        copies).  Do not mutate.  Capacities are validated strictly
        positive, so every entry is finite."""
        if self._inv_cap_t is None:
            self._inv_cap_t = 1.0 / self.capacity_by_dim()
        return self._inv_cap_t

    # --------------------------------------------------------- transactions
    def begin(self, mode: str = "auto") -> None:
        """Open a transaction; every mutation until :meth:`commit` /
        :meth:`rollback` is undoable.

        Parameters
        ----------
        mode:
            ``"snapshot"`` copies the mutable arrays up front (O(n + m·d)
            memcpy — fastest for small/medium clusters), ``"journal"``
            records old values per touched shard/machine (O(moves·d) —
            wins on large clusters where the arrays dwarf the move set),
            ``"auto"`` picks by size.

        Transactions do not nest, and :meth:`apply_assignment`,
        :meth:`set_offline`, and :meth:`copy` are forbidden while one is
        open.
        """
        if self._frame is not None:
            raise RuntimeError("transaction already open (nested begin())")
        if mode == "auto":
            snapshot = (
                self.num_shards + self.num_machines * self.dims
                <= _SNAPSHOT_ELEMENT_LIMIT
            )
        elif mode == "snapshot":
            snapshot = True
        elif mode == "journal":
            snapshot = False
        else:
            raise ValueError(f"unknown journal mode {mode!r}")
        self._frame = _Frame(self, snapshot)

    @property
    def in_transaction(self) -> bool:
        """True while a :meth:`begin` frame is open."""
        return self._frame is not None

    def commit(self) -> None:
        """Keep every mutation since :meth:`begin`; drop the journal."""
        if self._frame is None:
            raise RuntimeError("commit() without begin()")
        self._frame = None

    def rollback(self) -> None:
        """Restore the state bitwise to its :meth:`begin` image."""
        fr = self._frame
        if fr is None:
            raise RuntimeError("rollback() without begin()")
        self._frame = None  # mutations below must not be re-journaled
        if fr.snapshot:
            np.copyto(self._assign, fr.assign)
            np.copyto(self._loads, fr.loads)
            np.copyto(self._loads_t, fr.loads_t)
            np.copyto(self._counts, fr.counts)
            np.copyto(self._peak, fr.peak)
            np.copyto(self._peak_dirty, fr.peak_dirty)
            self._peak_any_dirty = fr.peak_any_dirty
            np.copyto(self._peak_block, fr.peak_block)
            np.copyto(self._block_dirty, fr.block_dirty)
            self._block_any_dirty = fr.block_any_dirty
            np.copyto(self._blocked, fr.blocked)
        else:
            for j, old in fr.shards.items():
                self._assign[j] = old
            for i, (row, count) in fr.machines.items():
                self._loads[i] = row
                self._loads_t[:, i] = row
                self._counts[i] = count
                self._peak_dirty[i] = True
                self._block_dirty[i // _PEAK_BLOCK] = True
            if fr.machines:
                self._peak_any_dirty = True
                self._block_any_dirty = True
            for i, old_blocked in fr.blocked_old.items():
                self._blocked[i] = old_blocked
        for (g, mach), cnt in fr.replica_hosts.items():
            hosts = self._replica_hosts[g]
            if cnt == 0:
                hosts.pop(mach, None)
            else:
                hosts[mach] = cnt
        self._num_unassigned = fr.num_unassigned
        self._num_vacant = fr.num_vacant
        self._replica_conflicts = fr.conflicts

    def _journal_shard(self, fr: _Frame, shard_id: int, old: int) -> None:
        if shard_id not in fr.shards:
            fr.shards[shard_id] = old

    def _journal_machine(self, fr: _Frame, machine_id: int) -> None:
        if machine_id not in fr.machines:
            fr.machines[machine_id] = (
                self._loads[machine_id].copy(),
                int(self._counts[machine_id]),
            )

    # ------------------------------------------------------------ mutation
    def machine_of(self, shard_id: int) -> int:
        """Machine currently hosting *shard_id* (or :data:`UNASSIGNED`)."""
        return int(self._assign[shard_id])

    def _host_leave(self, shard_id: int, machine_id: int) -> None:
        """Replica bookkeeping for a member leaving *machine_id*."""
        group = int(self._replica_of[shard_id])
        if group < 0:
            return
        hosts = self._replica_hosts[group]
        fr = self._frame
        if fr is not None:
            key = (group, machine_id)
            if key not in fr.replica_hosts:
                fr.replica_hosts[key] = hosts.get(machine_id, 0)
        cnt = hosts[machine_id] - 1
        if cnt:
            hosts[machine_id] = cnt
            if cnt == 1:
                self._replica_conflicts -= 1
        else:
            del hosts[machine_id]

    def _host_enter(self, shard_id: int, machine_id: int) -> None:
        """Replica bookkeeping for a member landing on *machine_id*."""
        group = int(self._replica_of[shard_id])
        if group < 0:
            return
        hosts = self._replica_hosts[group]
        fr = self._frame
        if fr is not None:
            key = (group, machine_id)
            if key not in fr.replica_hosts:
                fr.replica_hosts[key] = hosts.get(machine_id, 0)
        cnt = hosts.get(machine_id, 0) + 1
        hosts[machine_id] = cnt
        if cnt == 2:
            self._replica_conflicts += 1

    def unassign(self, shard_id: int) -> int:
        """Remove a shard from its machine; return the former machine id."""
        src = int(self._assign[shard_id])
        if src == UNASSIGNED:
            return UNASSIGNED
        fr = self._frame
        if fr is not None and not fr.snapshot:
            self._journal_shard(fr, shard_id, src)
            self._journal_machine(fr, src)
        self._loads[src] -= self._demand[shard_id]
        self._loads_t[:, src] = self._loads[src]
        self._assign[shard_id] = UNASSIGNED
        self._num_unassigned += 1
        cnt = int(self._counts[src]) - 1
        self._counts[src] = cnt
        if cnt == 0 and not self._offline[src]:
            self._num_vacant += 1
        if not self._peak_dirty[src]:
            self._peak_dirty[src] = True
            self._peak_any_dirty = True
            self._block_dirty[src // _PEAK_BLOCK] = True
            self._block_any_dirty = True
        if self._replica_groups:
            self._host_leave(shard_id, src)
        return src

    def unassign_many(self, shard_ids: Sequence[int] | np.ndarray) -> None:
        """Remove many shards at once (vectorized load/count updates).

        Equivalent to calling :meth:`unassign` in sequence — including
        bitwise-identical load arithmetic, since ``np.subtract.at``
        applies the per-shard subtractions in the order given — but with
        one NumPy dispatch instead of one per shard.
        """
        ids = np.asarray(shard_ids, dtype=np.int64)
        if ids.size == 0:
            return
        srcs = self._assign[ids]
        placed = srcs != UNASSIGNED
        if not np.all(placed):
            ids = ids[placed]
            srcs = srcs[placed]
            if ids.size == 0:
                return
        if ids.size > 1:
            s = np.sort(ids)
            if bool(np.any(s[1:] == s[:-1])):
                raise ValueError("unassign_many: duplicate shard ids")
        fr = self._frame
        if fr is not None and not fr.snapshot:
            for j, s in zip(ids.tolist(), srcs.tolist(), strict=True):
                self._journal_shard(fr, j, s)
            for i in np.unique(srcs).tolist():
                self._journal_machine(fr, i)
        np.subtract.at(self._loads, srcs, self._demand[ids])
        self._assign[ids] = UNASSIGNED
        self._num_unassigned += int(ids.size)
        touched, per = np.unique(srcs, return_counts=True)
        self._loads_t[:, touched] = self._loads[touched].T
        self._counts[touched] -= per
        self._num_vacant += int(
            np.sum((self._counts[touched] == 0) & ~self._offline[touched])
        )
        self._peak_dirty[touched] = True
        self._peak_any_dirty = True
        self._block_dirty[touched // _PEAK_BLOCK] = True
        self._block_any_dirty = True
        if self._replica_groups:
            for j, s in zip(ids.tolist(), srcs.tolist(), strict=True):
                self._host_leave(int(j), int(s))

    def assign_shard(self, shard_id: int, machine_id: int) -> None:
        """Place an unassigned shard on *machine_id* (O(d)).

        Raises when the machine is blocked (see :meth:`block_machine`).
        """
        if self._assign[shard_id] != UNASSIGNED:
            raise ValueError(
                f"shard {shard_id} is already on machine {self._assign[shard_id]}; "
                "use move() or unassign() first"
            )
        if not 0 <= machine_id < self.num_machines:
            raise ValueError(f"unknown machine {machine_id}")
        if self._blocked[machine_id]:
            raise ValueError(f"machine {machine_id} is blocked for placement")
        fr = self._frame
        if fr is not None and not fr.snapshot:
            self._journal_shard(fr, shard_id, UNASSIGNED)
            self._journal_machine(fr, machine_id)
        self._assign[shard_id] = machine_id
        self._loads[machine_id] += self._demand[shard_id]
        self._loads_t[:, machine_id] = self._loads[machine_id]
        self._num_unassigned -= 1
        cnt = int(self._counts[machine_id]) + 1
        self._counts[machine_id] = cnt
        if cnt == 1 and not self._offline[machine_id]:
            self._num_vacant -= 1
        if not self._peak_dirty[machine_id]:
            self._peak_dirty[machine_id] = True
            self._peak_any_dirty = True
            self._block_dirty[machine_id // _PEAK_BLOCK] = True
            self._block_any_dirty = True
        if self._replica_groups:
            self._host_enter(shard_id, machine_id)

    def move(self, shard_id: int, dst: int) -> int:
        """Move a shard to machine *dst*; return its former machine (O(d))."""
        src = self.unassign(shard_id)
        self.assign_shard(shard_id, dst)
        return src

    def apply_assignment(self, assignment: np.ndarray) -> None:
        """Replace the whole assignment (recomputes loads once, O(n·d))."""
        if self._frame is not None:
            raise RuntimeError("apply_assignment() inside an open transaction")
        arr = np.asarray(assignment, dtype=np.int64)
        if arr.shape != (self.num_shards,):
            raise ValueError(f"assignment must have shape ({self.num_shards},), got {arr.shape}")
        bad = (arr != UNASSIGNED) & ((arr < 0) | (arr >= self.num_machines))
        if np.any(bad):
            raise ValueError("assignment references unknown machines")
        self._assign = arr.copy()
        self._rebuild_caches()

    # -------------------------------------------------------------- queries
    def utilization(self) -> np.ndarray:
        """(m, d) load / capacity."""
        return safe_ratio(self._loads, self._capacity)

    def machine_peak_utilization(self) -> np.ndarray:
        """(m,) worst-dimension utilization per machine (cached)."""
        return self._refreshed_peaks().copy()

    def machine_peak_utilization_view(self) -> np.ndarray:
        """The live per-machine peak-utilization cache — do not mutate."""
        return self._refreshed_peaks()

    def peak_utilization(self) -> float:
        """Cluster-wide peak utilization (the primary imbalance measure).

        Computed from the segmented block-max: only blocks containing
        machines touched since the last call are rescanned, then the
        (short) block vector is reduced.  Bitwise-identical to
        ``machine_peak_utilization().max()`` because float ``max`` is
        exact and associative.
        """
        peaks = self._refreshed_peaks()
        if self._block_any_dirty:
            for b in np.flatnonzero(self._block_dirty).tolist():
                self._peak_block[b] = peaks[b * _PEAK_BLOCK : (b + 1) * _PEAK_BLOCK].max()
            self._block_dirty[:] = False
            self._block_any_dirty = False
        return float(self._peak_block.max())

    def headroom(self) -> np.ndarray:
        """(m, d) remaining capacity (may be negative when overloaded)."""
        return self._capacity - self._loads

    def assignment_drift(self, reference: np.ndarray) -> tuple[int, float]:
        """Size of the placement delta against *reference*.

        Returns ``(moves, bytes)``: the number of shards whose current
        machine differs from *reference* (unassigned counts as moved)
        and their summed index sizes — the quantities a
        :class:`~repro.algorithms.budget.MigrationBudget` bounds.  Note
        the byte figure is the raw index volume; a staged migration plan
        may transfer more (staging hops).
        """
        ref = np.asarray(reference, dtype=np.int64)
        if ref.shape != (self.num_shards,):
            raise ValueError(
                f"reference must have shape ({self.num_shards},), got {ref.shape}"
            )
        moved = self._assign != ref
        return int(np.count_nonzero(moved)), float(self.sizes[moved].sum())

    def machine_shards(self, machine_id: int) -> np.ndarray:
        """Shard ids currently hosted by *machine_id* (ascending)."""
        return np.flatnonzero(self._assign == machine_id)

    def shard_counts(self) -> np.ndarray:
        """(m,) number of shards per machine (cached, O(m))."""
        return self._counts.copy()

    def shard_counts_view(self) -> np.ndarray:
        """The live per-machine shard-count cache — do not mutate."""
        return self._counts

    def vacant_machines(self) -> np.ndarray:
        """Ids of machines hosting no shard."""
        return np.flatnonzero(self._counts == 0)

    @property
    def num_vacant_in_service(self) -> int:
        """Number of machines hosting no shard and not offline (cached)."""
        return self._num_vacant

    def unassigned_shards(self) -> np.ndarray:
        """Ids of shards with no machine (transient during destroy/repair)."""
        return np.flatnonzero(self._assign == UNASSIGNED)

    def is_fully_assigned(self) -> bool:
        """True when every shard has a machine (cached, O(1))."""
        return self._num_unassigned == 0

    def is_within_capacity(self, *, atol: float = 1e-9) -> bool:
        """True when no machine exceeds capacity in any dimension."""
        return bool(np.all(self._loads <= self._capacity + atol))

    def overloaded_machines(self, *, atol: float = 1e-9) -> np.ndarray:
        """Ids of machines exceeding capacity in some dimension."""
        return np.flatnonzero(np.any(self._loads > self._capacity + atol, axis=1))

    def fits(self, shard_id: int, machine_id: int, *, atol: float = 1e-9) -> bool:
        """Would *shard_id* fit on *machine_id* right now (ignoring its
        current placement if it is already there)?"""
        extra = self._demand[shard_id]
        load = self._loads[machine_id]
        if self._assign[shard_id] == machine_id:
            return bool(np.all(load <= self._capacity[machine_id] + atol))
        return bool(np.all(load + extra <= self._capacity[machine_id] + atol))

    def total_demand(self) -> np.ndarray:
        """(d,) summed demand across all shards."""
        return self._demand.sum(axis=0)

    def total_capacity(self) -> np.ndarray:
        """(d,) summed capacity across all machines."""
        return self._capacity.sum(axis=0)

    def mean_utilization(self) -> np.ndarray:
        """(d,) total demand / total capacity — the tightness of the instance."""
        return safe_ratio(self.total_demand(), self.total_capacity())

    # ------------------------------------------------------------- replicas
    @property
    def replica_groups(self) -> dict[int, np.ndarray]:
        """Logical shard id → member shard ids (replicated shards only)."""
        return self._replica_groups

    def replica_peers(self, shard_id: int) -> np.ndarray:
        """Sibling shard ids of *shard_id* (empty for unreplicated shards)."""
        group = int(self._replica_of[shard_id])
        if group < 0:
            return np.empty(0, dtype=np.int64)
        members = self._replica_groups[group]
        return members[members != shard_id]

    def replica_peer_machines(self, shard_id: int) -> np.ndarray:
        """Machines currently hosting siblings of *shard_id*."""
        peers = self.replica_peers(shard_id)
        if peers.size == 0:
            return peers
        hosts = self._assign[peers]
        return np.unique(hosts[hosts != UNASSIGNED])

    def replica_conflicts(self) -> list[tuple[int, int]]:
        """(machine, logical shard) pairs hosting more than one replica."""
        out: list[tuple[int, int]] = []
        for group, hosts in self._replica_hosts.items():
            out.extend(
                (mach, group) for mach, cnt in sorted(hosts.items()) if cnt > 1
            )
        return out

    @property
    def replica_conflict_count(self) -> int:
        """Number of (machine, logical shard) anti-affinity violations
        (cached; equals ``len(replica_conflicts())``)."""
        return self._replica_conflicts

    def has_replica_conflicts(self) -> bool:
        """True when any machine hosts two replicas of one logical shard."""
        return self._replica_conflicts > 0

    # ------------------------------------------------------------- blocking
    @property
    def blocked_mask(self) -> np.ndarray:
        """(m,) bool mask of machines blocked for placement.

        Blocking is how SRA pins its *designated-return* machines: a
        blocked machine accepts no new shard, so it stays vacant by
        construction and can be handed back when the episode settles.
        """
        return self._blocked

    def block_machine(self, machine_id: int) -> None:
        """Forbid placements on *machine_id* (it must currently be vacant)."""
        if not 0 <= machine_id < self.num_machines:
            raise ValueError(f"unknown machine {machine_id}")
        if self._counts[machine_id] > 0:
            raise ValueError(f"cannot block machine {machine_id}: it hosts shards")
        fr = self._frame
        if fr is not None and not fr.snapshot and machine_id not in fr.blocked_old:
            fr.blocked_old[machine_id] = bool(self._blocked[machine_id])
        self._blocked[machine_id] = True

    def unblock_machine(self, machine_id: int) -> None:
        """Allow placements on *machine_id* again (not possible for
        offline machines — a dead machine stays dead)."""
        if not 0 <= machine_id < self.num_machines:
            raise ValueError(f"unknown machine {machine_id}")
        if self._offline[machine_id]:
            raise ValueError(f"machine {machine_id} is offline and cannot be unblocked")
        fr = self._frame
        if fr is not None and not fr.snapshot and machine_id not in fr.blocked_old:
            fr.blocked_old[machine_id] = bool(self._blocked[machine_id])
        self._blocked[machine_id] = False

    @property
    def offline_mask(self) -> np.ndarray:
        """(m,) bool mask of machines that have failed / left the fleet.

        Offline implies blocked-for-placement, but unlike a blocked
        designated-return machine an offline machine can never be
        unblocked, used as a staging host, swapped by the exchange
        operator, or returned as exchange compensation.
        """
        return self._offline

    def set_offline(self, machine_id: int) -> None:
        """Mark a (vacant) machine as permanently out of service."""
        if self._frame is not None:
            raise RuntimeError("set_offline() inside an open transaction")
        if not 0 <= machine_id < self.num_machines:
            raise ValueError(f"unknown machine {machine_id}")
        if self._counts[machine_id] > 0:
            raise ValueError(
                f"cannot take machine {machine_id} offline: it hosts shards "
                "(unassign them first)"
            )
        if not self._offline[machine_id]:
            # The machine is vacant by the check above, so it leaves the
            # vacant-in-service pool.
            self._num_vacant -= 1
        self._offline[machine_id] = True
        self._blocked[machine_id] = True

    # ---------------------------------------------------------------- copy
    def copy(self) -> "ClusterState":
        """Structural copy: shares machine/shard descriptions, copies state."""
        if self._frame is not None:
            raise RuntimeError("copy() inside an open transaction")
        dup = object.__new__(ClusterState)
        dup._schema = self._schema
        dup._machines = self._machines
        dup._shards = self._shards
        dup._capacity = self._capacity
        dup._demand = self._demand
        dup._sizes = self._sizes
        dup._exchange_mask = self._exchange_mask
        dup._norm_demand = self._norm_demand
        dup._cap_t = self._cap_t
        dup._inv_cap_t = self._inv_cap_t
        dup._assign = self._assign.copy()
        dup._loads = self._loads.copy()
        dup._loads_t = self._loads_t.copy()
        dup._blocked = self._blocked.copy()
        dup._offline = self._offline.copy()
        dup._replica_of = self._replica_of
        dup._replica_groups = self._replica_groups
        dup._counts = self._counts.copy()
        dup._num_unassigned = self._num_unassigned
        dup._num_vacant = self._num_vacant
        dup._peak = self._peak.copy()
        dup._peak_dirty = self._peak_dirty.copy()
        dup._peak_any_dirty = self._peak_any_dirty
        dup._peak_block = self._peak_block.copy()
        dup._block_dirty = self._block_dirty.copy()
        dup._block_any_dirty = self._block_any_dirty
        dup._replica_hosts = {
            g: hosts.copy() for g, hosts in self._replica_hosts.items()
        }
        dup._replica_conflicts = self._replica_conflicts
        dup._frame = None
        return dup

    # ------------------------------------------------------ shared buffers
    @classmethod
    def attach(
        cls,
        machines: Sequence[Machine],
        shards: Sequence[Shard],
        *,
        capacity: np.ndarray,
        demand: np.ndarray,
        sizes: np.ndarray,
        assignment: Sequence[int] | np.ndarray,
        blocked: np.ndarray | None = None,
        offline: np.ndarray | None = None,
    ) -> "ClusterState":
        """Build a state over externally owned description buffers.

        Unlike the constructor — which ``np.stack``s per-object vectors
        into fresh matrices — this adopts *capacity* (m, d), *demand*
        (n, d) and *sizes* (n,) **as given**, without copying.  That is
        the zero-copy path used by :mod:`repro.parallel.shm`: the
        matrices are views into a ``multiprocessing.shared_memory``
        segment, attached once per worker, and the *machines* / *shards*
        descriptions are expected to reference rows of the same buffers.

        Mutable state (*assignment*, *blocked*, *offline*) is copied, so
        the returned state searches privately; only the immutable
        instance description is shared.  The caller keeps the backing
        buffers alive for the lifetime of the state (or calls
        :meth:`detach` to sever the dependency).  Offline machines are
        forced blocked, matching :meth:`set_offline`.
        """
        if not machines:
            raise ValueError("ClusterState requires at least one machine")
        if not shards:
            raise ValueError("ClusterState requires at least one shard")
        schema = machines[0].schema
        if [mach.id for mach in machines] != list(range(len(machines))):
            raise ValueError("machine ids must be dense 0..m-1 in order")
        if [sh.id for sh in shards] != list(range(len(shards))):
            raise ValueError("shard ids must be dense 0..n-1 in order")
        m, n, d = len(machines), len(shards), schema.dims
        if capacity.shape != (m, d):
            raise ValueError(f"capacity must have shape ({m}, {d}), got {capacity.shape}")
        if demand.shape != (n, d):
            raise ValueError(f"demand must have shape ({n}, {d}), got {demand.shape}")
        if sizes.shape != (n,):
            raise ValueError(f"sizes must have shape ({n},), got {sizes.shape}")

        state = object.__new__(cls)
        state._schema = schema
        state._machines = tuple(machines)
        state._shards = tuple(shards)
        state._capacity = capacity
        state._demand = demand
        state._sizes = sizes
        state._exchange_mask = np.array([mach.exchange for mach in machines], dtype=bool)
        state._norm_demand = None
        state._cap_t = None
        state._inv_cap_t = None

        arr = np.asarray(assignment, dtype=np.int64)
        if arr.shape != (n,):
            raise ValueError(f"assignment must have shape ({n},), got {arr.shape}")
        bad = (arr != UNASSIGNED) & ((arr < 0) | (arr >= m))
        if np.any(bad):
            raise ValueError(f"assignment references unknown machines at shards {np.flatnonzero(bad)}")
        state._assign = arr.copy()
        state._offline = (
            np.zeros(m, dtype=bool) if offline is None else np.asarray(offline, dtype=bool).copy()
        )
        state._blocked = (
            np.zeros(m, dtype=bool) if blocked is None else np.asarray(blocked, dtype=bool).copy()
        )
        state._blocked |= state._offline
        state._replica_of = np.array([sh.replica_of for sh in shards], dtype=np.int64)
        groups: dict[int, list[int]] = {}
        for sh in shards:
            if sh.replica_of >= 0:
                groups.setdefault(sh.replica_of, []).append(sh.id)
        state._replica_groups = {
            g: np.asarray(members, dtype=np.int64) for g, members in groups.items()
        }
        state._frame = None
        state._rebuild_caches()
        return state

    def detach(self) -> None:
        """Re-home shared description buffers into private copies.

        After :meth:`attach` the capacity/demand/sizes matrices (and the
        machine/shard vectors referencing their rows) may live in a
        shared-memory segment the caller is about to unlink.  ``detach``
        copies them into process-private arrays and rebuilds the
        machine/shard descriptions over the copies, so the state remains
        valid after the segment is unmapped.  Lazy derived mirrors are
        dropped (they are recomputed on demand from the private copies).
        No-op cost beyond the copies; safe to call on any state.
        """
        if self._frame is not None:
            raise RuntimeError("detach() inside an open transaction")
        self._capacity = self._capacity.copy()
        self._demand = self._demand.copy()
        self._sizes = self._sizes.copy()
        self._norm_demand = None
        self._cap_t = None
        self._inv_cap_t = None
        self._machines = tuple(
            replace(mach, capacity=self._capacity[i])
            for i, mach in enumerate(self._machines)
        )
        self._shards = tuple(
            replace(sh, demand=self._demand[j], size_bytes=float(self._sizes[j]))
            for j, sh in enumerate(self._shards)
        )

    def with_extra_machines(self, extra: Iterable[Machine]) -> "ClusterState":
        """New state with *extra* machines appended (ids are rewritten to
        continue the dense sequence); the assignment is preserved.

        This is how borrowed exchange machines join a cluster.
        """
        extra = list(extra)
        machines = list(self._machines) + [
            mach.with_id(self.num_machines + k) for k, mach in enumerate(extra)
        ]
        return ClusterState(machines, self._shards, self._assign)

    def validate(self) -> None:
        """Audit every internal invariant; raise ``ValueError`` on breach.

        Used by tests (and available to users debugging custom state
        manipulations).  Checks: loads and every incremental cache match
        the assignment exactly, blocked machines host nothing, offline
        implies blocked, and the replica-group tables agree with the
        shard descriptions.
        """
        recomputed = np.zeros_like(self._loads)
        placed = self._assign != UNASSIGNED
        if np.any(placed):
            np.add.at(recomputed, self._assign[placed], self._demand[placed])
        if not np.allclose(self._loads, recomputed, atol=1e-6):
            raise ValueError("loads diverged from the assignment")
        counts = np.bincount(self._assign[placed], minlength=self.num_machines)
        if not np.array_equal(self._counts, counts):
            raise ValueError("shard-count cache diverged from the assignment")
        if self._num_unassigned != int(np.sum(~placed)):
            raise ValueError("unassigned-count cache diverged from the assignment")
        if self._num_vacant != int(np.sum((counts == 0) & ~self._offline)):
            raise ValueError("vacant-count cache diverged from the assignment")
        if not np.array_equal(self._loads_t, self._loads.T):
            raise ValueError("SoA load mirror diverged from the load matrix")
        peaks = (self._loads / self._capacity).max(axis=1)
        live = ~self._peak_dirty
        if not np.allclose(self._peak[live], peaks[live], atol=1e-9):
            raise ValueError("peak-utilization cache diverged from the loads")
        dirty_blocks = np.zeros(self._block_dirty.size, dtype=bool)
        dirty_blocks[np.flatnonzero(self._peak_dirty) // _PEAK_BLOCK] = True
        if np.any(dirty_blocks & ~self._block_dirty):
            raise ValueError("dirty peak row inside a clean block")
        for b in np.flatnonzero(~self._block_dirty).tolist():
            seg = self._peak[b * _PEAK_BLOCK : (b + 1) * _PEAK_BLOCK]
            if self._peak_block[b] != seg.max():
                raise ValueError(f"block-max cache diverged in block {b}")
        bad = np.flatnonzero(self._blocked & (counts > 0))
        if bad.size:
            raise ValueError(f"blocked machines host shards: {bad.tolist()}")
        if np.any(self._offline & ~self._blocked):
            raise ValueError("offline machines must be blocked")
        conflicts = 0
        for group, members in self._replica_groups.items():
            for j in members:
                if self._shards[int(j)].replica_of != group:
                    raise ValueError(f"replica table inconsistent at shard {j}")
            hosts = self._assign[members]
            hosts = hosts[hosts != UNASSIGNED]
            uniq, cnt = np.unique(hosts, return_counts=True)
            expected = {int(mach): int(c) for mach, c in zip(uniq, cnt, strict=True)}
            if expected != self._replica_hosts.get(group, {}):
                raise ValueError(f"replica host cache diverged for group {group}")
            conflicts += int(np.sum(cnt > 1))
        if conflicts != self._replica_conflicts:
            raise ValueError("replica conflict counter diverged")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterState(m={self.num_machines}, n={self.num_shards}, "
            f"d={self.dims}, peak={self.peak_utilization():.3f})"
        )
