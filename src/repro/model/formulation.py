"""The linearly constrained IP model of the shard reassignment problem.

This is the formulation from DESIGN.md §1.1, reproducing the paper's
"linearly constrained integer programming (IP) model".  Variables:

* ``x[j, i] ∈ {0, 1}`` — shard ``j`` ends on machine ``i``;
* ``y[i] ∈ {0, 1}`` — machine ``i`` is vacant at the end;
* ``z ∈ [0, 1]``   — peak normalized utilization (continuous).

Objective: ``minimize z + λ · Σ_j w_j · (1 − x[j, a0(j)])`` — balance the
cluster, with a tunable penalty on migrated bytes.

Constraints (all linear):

1. assignment:       ``Σ_i x[j,i] = 1``                       ∀ j
2. peak definition:  ``Σ_j r_j[k]·x[j,i] ≤ C_i[k]·z``         ∀ i, k
3. hard capacity:    ``Σ_j r_j[k]·x[j,i] ≤ C_i[k]``           ∀ i, k
4. vacancy linking:  ``Σ_j x[j,i] ≤ n·(1 − y[i])``            ∀ i
5. vacancy return:   ``Σ_i y[i] ≥ R``
6. anti-affinity:    ``Σ_{j∈g} x[j,i] ≤ 1``                   ∀ machine i, replica group g

The builder emits sparse matrices consumable by ``scipy.optimize.milp``.
Variable order: ``x`` flattened row-major (shard-major), then ``y``,
then ``z``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro._validation import check_non_negative
from repro.cluster import ClusterState

__all__ = ["ModelConfig", "BuiltModel", "build_model"]


@dataclass(frozen=True)
class ModelConfig:
    """Knobs of the IP model.

    Attributes
    ----------
    required_returns:
        ``R`` — number of machines that must end vacant.
    move_penalty:
        ``λ`` — objective weight per *normalized* migrated byte (shard
        sizes are normalized by the total shard bytes, so ``λ`` is the
        objective cost of migrating the whole index once).  A small
        positive value breaks ties toward fewer moves without trading
        away balance; 0 ignores migration cost.
    forbid_exchange_overuse:
        When True, machines flagged ``exchange`` count toward the vacancy
        pool like any other machine (the default, matching the paper's
        exchange semantics).  Reserved for ablations.
    """

    required_returns: int = 0
    move_penalty: float = 0.01

    def __post_init__(self) -> None:
        check_non_negative("required_returns", self.required_returns)
        check_non_negative("move_penalty", self.move_penalty)


@dataclass
class BuiltModel:
    """Matrices of one model instance, ready for a MILP solver.

    ``A_ub x ≤ b_ub``, ``A_eq x = b_eq``, ``bounds``, binary mask, and the
    objective vector ``c`` (plus ``objective_offset`` so reported objective
    values match the paper's form with the ``(1 − x)`` term).
    """

    c: np.ndarray
    objective_offset: float
    A_ub: sparse.csr_matrix
    b_ub: np.ndarray
    A_eq: sparse.csr_matrix
    b_eq: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray
    num_shards: int
    num_machines: int

    def x_index(self, shard: int, machine: int) -> int:
        """Column of variable ``x[shard, machine]``."""
        return shard * self.num_machines + machine

    def y_index(self, machine: int) -> int:
        """Column of variable ``y[machine]``."""
        return self.num_shards * self.num_machines + machine

    @property
    def z_index(self) -> int:
        """Column of variable ``z``."""
        return self.num_shards * self.num_machines + self.num_machines

    @property
    def num_variables(self) -> int:
        return self.z_index + 1

    def extract_assignment(self, solution: np.ndarray) -> np.ndarray:
        """Decode an (integral) solution vector into an assignment array."""
        n, m = self.num_shards, self.num_machines
        x = solution[: n * m].reshape(n, m)
        return np.argmax(x, axis=1).astype(np.int64)


def build_model(state: ClusterState, config: ModelConfig) -> BuiltModel:
    """Build the IP matrices for *state* under *config*.

    The state must be fully assigned (``a0`` is read from it).  Machines
    flagged ``exchange`` need no special treatment here: they are ordinary
    machines that happen to start vacant, exactly as in the paper.
    """
    if not state.is_fully_assigned():
        raise ValueError("model requires a fully assigned initial state")
    n, m, d = state.num_shards, state.num_machines, state.dims
    a0 = state.assignment_view()
    demand = state.demand  # (n, d)
    capacity = state.capacity  # (m, d)
    nvar = n * m + m + 1
    z_col = n * m + m

    # ------------------------------------------------------------- objective
    c = np.zeros(nvar)
    c[z_col] = 1.0
    total_bytes = float(state.sizes.sum())
    offset = 0.0
    if config.move_penalty > 0 and total_bytes > 0:
        w = config.move_penalty * state.sizes / total_bytes
        # λ Σ w_j (1 - x[j, a0_j]) = λ Σ w_j - λ Σ w_j x[j, a0_j]
        offset = float(w.sum())
        cols = np.arange(n) * m + a0
        c[cols] -= w

    # ------------------------------------------------------------- equality
    # Σ_i x[j,i] = 1 per shard.
    rows = np.repeat(np.arange(n), m)
    cols = np.arange(n * m)
    A_eq = sparse.csr_matrix(
        (np.ones(n * m), (rows, cols)), shape=(n, nvar)
    )
    b_eq = np.ones(n)

    # ----------------------------------------------------------- inequality
    ub_blocks: list[sparse.coo_matrix] = []
    b_ub_parts: list[np.ndarray] = []

    # (2) peak definition and (3) hard capacity, one row per (machine, dim).
    # Column pattern for machine i, dim k: x[j,i] has coefficient r_j[k].
    x_rows: list[int] = []
    x_cols: list[int] = []
    x_vals: list[float] = []
    row = 0
    for i in range(m):
        for k in range(d):
            jcols = np.arange(n) * m + i
            x_rows.extend([row] * n)
            x_cols.extend(jcols.tolist())
            x_vals.extend(demand[:, k].tolist())
            row += 1
    load_block = sparse.coo_matrix(
        (x_vals, (x_rows, x_cols)), shape=(m * d, nvar)
    ).tocsr()

    # (2): load - C z <= 0
    peak = load_block.copy().tolil()
    cap_flat = capacity.reshape(-1)
    for r in range(m * d):
        peak[r, z_col] = -cap_flat[r]
    ub_blocks.append(peak.tocoo())
    b_ub_parts.append(np.zeros(m * d))

    # (3): load <= C
    ub_blocks.append(load_block.tocoo())
    b_ub_parts.append(cap_flat.copy())

    # (4): Σ_j x[j,i] + n y[i] <= n
    rows4: list[int] = []
    cols4: list[int] = []
    vals4: list[float] = []
    for i in range(m):
        jcols = np.arange(n) * m + i
        rows4.extend([i] * n)
        cols4.extend(jcols.tolist())
        vals4.extend([1.0] * n)
        rows4.append(i)
        cols4.append(n * m + i)
        vals4.append(float(n))
    ub_blocks.append(sparse.coo_matrix((vals4, (rows4, cols4)), shape=(m, nvar)))
    b_ub_parts.append(np.full(m, float(n)))

    # (6): replica anti-affinity — Σ_{j∈group} x[j,i] <= 1 per machine.
    groups = [g for g in state.replica_groups.values() if len(g) >= 2]
    if groups:
        rows6: list[int] = []
        cols6: list[int] = []
        row6 = 0
        for members in groups:
            for i in range(m):
                rows6.extend([row6] * len(members))
                cols6.extend((int(j) * m + i) for j in members)
                row6 += 1
        ub_blocks.append(
            sparse.coo_matrix(
                (np.ones(len(cols6)), (rows6, cols6)), shape=(row6, nvar)
            )
        )
        b_ub_parts.append(np.ones(row6))

    # (5): -Σ_i y[i] <= -R
    if config.required_returns > 0:
        rows5 = [0] * m
        cols5 = [n * m + i for i in range(m)]
        vals5 = [-1.0] * m
        ub_blocks.append(sparse.coo_matrix((vals5, (rows5, cols5)), shape=(1, nvar)))
        b_ub_parts.append(np.array([-float(config.required_returns)]))

    A_ub = sparse.vstack(ub_blocks).tocsr()
    b_ub = np.concatenate(b_ub_parts)

    # ---------------------------------------------------------------- bounds
    lower = np.zeros(nvar)
    upper = np.ones(nvar)
    integrality = np.ones(nvar)
    integrality[z_col] = 0.0  # z continuous

    return BuiltModel(
        c=c,
        objective_offset=offset,
        A_ub=A_ub,
        b_ub=b_ub,
        A_eq=A_eq,
        b_eq=b_eq,
        lower=lower,
        upper=upper,
        integrality=integrality,
        num_shards=n,
        num_machines=m,
    )
