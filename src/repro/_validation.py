"""Shared argument-validation helpers.

Every public entry point in the library validates its inputs eagerly and
raises with a message naming the offending argument, so that failures
surface at the API boundary rather than deep inside vectorized kernels.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_in",
    "as_demand_array",
]


def check_positive(name: str, value: float) -> float:
    """Return *value* if strictly positive, else raise ``ValueError``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Return *value* if >= 0, else raise ``ValueError``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Return *value* if within [0, 1], else raise ``ValueError``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in(name: str, value: Any, allowed: Sequence[Any]) -> Any:
    """Return *value* if it is one of *allowed*, else raise ``ValueError``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {list(allowed)!r}, got {value!r}")
    return value


def as_demand_array(name: str, values: Any, dims: int | None = None) -> np.ndarray:
    """Coerce *values* to a 1-D non-negative float64 array.

    Parameters
    ----------
    name:
        Argument name used in error messages.
    values:
        Scalar or sequence of resource quantities.
    dims:
        If given, the required length of the resulting vector.
    """
    arr = np.atleast_1d(np.asarray(values, dtype=np.float64))
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if np.any(~np.isfinite(arr)):
        raise ValueError(f"{name} must be finite, got {arr!r}")
    if np.any(arr < 0):
        raise ValueError(f"{name} must be non-negative, got {arr!r}")
    if dims is not None and arr.shape[0] != dims:
        raise ValueError(f"{name} must have {dims} dimensions, got {arr.shape[0]}")
    return arr
