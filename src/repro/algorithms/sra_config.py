"""SRA configuration (separate module to avoid import cycles)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.algorithms.budget import MigrationBudget
from repro.algorithms.lns import AlnsConfig
from repro.algorithms.objective import ObjectiveWeights

__all__ = ["SRAConfig", "MigrationBudget"]


@dataclass(frozen=True)
class SRAConfig:
    """Knobs of SRA.

    Attributes
    ----------
    alns:
        Hyper-parameters of the underlying ALNS engine.
    weights:
        Search-objective weights (move penalty, vacancy penalty, ...).
    max_hops_per_shard:
        Staging depth allowed in the migration planner.
    feasibility_coupling:
        When True (default, the paper's design) a candidate may only
        become the incumbent best if a transient-feasible migration
        schedule exists and the exchange contract is satisfiable.
        When False only capacity feasibility is checked during the
        search, and schedulability is evaluated post-hoc — ablation
        E10 measures how often that fails.
    use_vacancy_removal:
        Whether the vacancy-minting destroy operator participates
        (ablation E10).
    polish:
        Whether to finish with a steepest-descent move/swap polish of the
        incumbent (standard ALNS practice; ablation E10).  The polish
        respects blocked machines and is only kept when the polished
        state still passes the feasibility coupling.
    polish_steps:
        Step budget of the polish phase.
    restarts:
        Independent search restarts (best-of-K).  When > 1 the search is
        fanned out by ``repro.parallel.run_sra_restarts``: restart ``k``
        runs with seed ``spawn_seeds(alns.seed, K)[k]`` and the best
        feasible result wins.  The restart set is a pure function of the
        master seed, so results are identical for any worker count.
    cooperative:
        Portfolio mode for the restart fan-out: when True, restarts
        periodically publish/adopt incumbents through a shared
        best-solution slot instead of searching blind (see
        ``repro.parallel.shm``).  Opt-in because adoption couples the
        trajectories to worker *timing*: results are no longer
        bitwise-reproducible across runs or worker counts (exchange
        events are recorded via obs for auditing).  Ignored when
        ``restarts == 1``.
    exchange_period:
        Iterations between incumbent-exchange polls in cooperative mode.
    seed:
        Convenience override for ``alns.seed``.
    n_workers:
        Convenience override for ``alns.n_workers`` — the worker-pool
        size restarts are scheduled onto (1 = serial, today's path).
    debug_cross_check:
        Re-derive every delta-evaluated objective from scratch and raise
        on any mismatch (see the "Delta evaluation contract" section of
        docs/ARCHITECTURE.md).  Slow; for tests and operator development.
    migration_budget:
        Per-round churn allowance for incremental (continuous) episodes:
        caps the shards moved and/or bytes migrated relative to the
        episode's reference assignment (``state.assignment`` at
        ``rebalance`` entry — *not* the warm start).  ``None`` (default)
        and an all-``None`` budget leave the search unbounded and the
        solve path bitwise-identical to previous releases.  When
        bounded, the best filter rejects over-budget candidates and the
        destroy portfolio becomes locality-biased at the budget
        boundary (see ``repro.algorithms.budget``).
    """

    alns: AlnsConfig = field(default_factory=AlnsConfig)
    weights: ObjectiveWeights = field(default_factory=ObjectiveWeights)
    max_hops_per_shard: int = 2
    feasibility_coupling: bool = True
    use_vacancy_removal: bool = True
    polish: bool = True
    polish_steps: int = 3000
    restarts: int = 1
    cooperative: bool = False
    exchange_period: int = 50
    seed: int | None = None
    n_workers: int | None = None
    debug_cross_check: bool = False
    migration_budget: MigrationBudget | None = None

    def __post_init__(self) -> None:
        if self.max_hops_per_shard < 1:
            raise ValueError("max_hops_per_shard must be >= 1")
        if self.restarts < 1:
            raise ValueError("restarts must be >= 1")
        if self.exchange_period < 1:
            raise ValueError("exchange_period must be >= 1")
        overrides = {}
        if self.seed is not None:
            overrides["seed"] = self.seed
        if self.n_workers is not None:
            overrides["n_workers"] = self.n_workers
        if overrides:
            object.__setattr__(self, "alns", replace(self.alns, **overrides))
