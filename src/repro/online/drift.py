"""Workload drift models for multi-epoch studies.

A drift model rewrites shard demands between serving epochs.  The
default, :class:`PopularityDrift`, models the dominant real-world
mechanism in search clusters: the *query mix* changes (CPU demand
follows shard popularity, which random-walks between epochs) while the
index itself (RAM/disk footprint) stays put.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_fraction, check_positive
from repro.cluster import ClusterState, Shard
from repro.workloads.synthetic import waterfill_scale

__all__ = ["PopularityDrift", "apply_demands"]


def apply_demands(state: ClusterState, new_demand: np.ndarray) -> ClusterState:
    """New state with *new_demand* installed and the assignment preserved.

    Machines, shard identities, sizes and replica structure carry over —
    only the demand vectors change (the cluster woke up to a different
    workload).
    """
    if new_demand.shape != state.demand.shape:
        raise ValueError(
            f"new_demand must have shape {state.demand.shape}, got {new_demand.shape}"
        )
    shards = [
        Shard(
            id=sh.id,
            demand=new_demand[sh.id].copy(),
            schema=sh.schema,
            size_bytes=sh.size_bytes,
            replica_of=sh.replica_of,
        )
        for sh in state.shards
    ]
    return ClusterState(list(state.machines), shards, state.assignment)


@dataclass
class PopularityDrift:
    """CPU demand follows a drifting Zipf popularity; RAM/disk are static.

    Attributes
    ----------
    drift:
        Fraction of popularity mass replaced per epoch (0 = static
        workload, 0.2–0.5 matches diurnal/weekly drift in production).
    alpha:
        Zipf exponent of the fresh popularity drawn each epoch.
    target_utilization:
        CPU tightness maintained each epoch (total CPU demand is
        renormalized to this fraction of total CPU capacity).
    max_shard_fraction:
        Cap on one shard's CPU demand relative to the mean machine.
    seed:
        RNG seed; the drift sequence is deterministic given it.
    """

    drift: float = 0.3
    alpha: float = 1.0
    target_utilization: float = 0.8
    max_shard_fraction: float = 0.35
    seed: int = 0

    def __post_init__(self) -> None:
        check_fraction("drift", self.drift)
        check_positive("alpha", self.alpha)
        check_positive("target_utilization", self.target_utilization)
        check_fraction("max_shard_fraction", self.max_shard_fraction)
        self._rng = np.random.default_rng(self.seed)
        self._popularity: np.ndarray | None = None

    def step(self, state: ClusterState) -> ClusterState:
        """Advance one epoch: returns the state under the drifted workload."""
        n = state.num_shards
        if self._popularity is None or self._popularity.shape[0] != n:
            # Initialize from the current CPU demand profile.
            cpu_idx = state.schema.index("cpu")
            base = state.demand[:, cpu_idx]
            total = base.sum()
            self._popularity = base / total if total > 0 else np.full(n, 1.0 / n)
        ranks = np.arange(1, n + 1, dtype=np.float64)
        fresh = ranks ** (-self.alpha)
        self._rng.shuffle(fresh)
        fresh /= fresh.sum()
        self._popularity = (1.0 - self.drift) * self._popularity + self.drift * fresh

        cpu_idx = state.schema.index("cpu")
        total_cpu = state.capacity[:, cpu_idx].sum()
        cap = self.max_shard_fraction * state.capacity[:, cpu_idx].mean()
        new_demand = state.demand.copy()
        new_demand[:, cpu_idx] = waterfill_scale(
            self._popularity, self.target_utilization * total_cpu, cap
        )
        return apply_demands(state, new_demand)
