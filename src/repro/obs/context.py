"""Ambient observability context.

Instrumented library code never takes a tracer parameter; it asks for
the process-wide active :class:`Obs` bundle via :func:`current`.  By
default that bundle is :data:`NULL_OBS` (disabled tracer + disabled
registry), so observability costs one attribute read per instrumented
call site until someone activates a real bundle:

    from repro import obs

    with obs.observed() as o:            # tracer + metrics for this block
        report = ResourceExchangeRebalancer(...).run(state)
    o.tracer.export_jsonl("trace.jsonl")
    o.metrics.export_json("metrics.json")

``observed()`` restores the previous bundle on exit (re-entrant: nested
blocks stack).  :func:`activate` / :func:`deactivate` are the low-level
non-context API used by the CLI.

The context is deliberately a module global, not a thread/contextvar:
every episode in this library is single-threaded, and a global keeps
the disabled-path cost at a dict-free attribute read.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["Obs", "NULL_OBS", "current", "activate", "deactivate", "observed"]


@dataclass(frozen=True)
class Obs:
    """A tracer + metrics registry travelling together."""

    tracer: Tracer
    metrics: MetricsRegistry

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled


#: The disabled bundle handed out when nothing was activated.
NULL_OBS = Obs(NULL_TRACER, NULL_REGISTRY)

_active: Obs = NULL_OBS


def current() -> Obs:
    """The active observability bundle (``NULL_OBS`` unless activated)."""
    return _active


def activate(obs: Obs) -> Obs:
    """Install *obs* as the ambient bundle; returns the previous one."""
    global _active
    previous = _active
    _active = obs
    return previous


def deactivate(previous: Obs = NULL_OBS) -> None:
    """Restore *previous* (default: disable observability)."""
    global _active
    _active = previous


@contextmanager
def observed(
    tracer: Tracer | None = None, metrics: MetricsRegistry | None = None
) -> Iterator[Obs]:
    """Activate a (fresh by default) bundle for the duration of the block."""
    obs = Obs(tracer if tracer is not None else Tracer(),
              metrics if metrics is not None else MetricsRegistry())
    previous = activate(obs)
    try:
        yield obs
    finally:
        deactivate(previous)
